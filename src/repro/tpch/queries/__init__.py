"""The five TPC-H queries profiled in Figure 4: Q1, Q3, Q6, Q18, Q22.

Each module exposes ``NAME``, ``run(ctx, catalog) -> QueryResult`` (the
physical operator pipeline executed on the simulated machine), and
``reference(data) -> rows`` (a pure-NumPy recomputation used to validate
the pipeline bit-for-bit).
"""

from . import q1, q3, q6, q18, q22
from .common import QueryResult

#: Figure 4's x-axis, in its order.
PROFILED_QUERIES = {
    "Q1": q1,
    "Q3": q3,
    "Q6": q6,
    "Q18": q18,
    "Q22": q22,
}

__all__ = ["PROFILED_QUERIES", "QueryResult", "q1", "q3", "q6", "q18", "q22"]
