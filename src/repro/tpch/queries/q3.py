"""TPC-H Q3: shipping priority.

Three filtered tables joined twice, then grouped and top-10 sorted —
the classic select-project-join shape.  Selects on customer (point
predicate on mktsegment) and on the two date columns are JAFAR-eligible
full-column scans; the joins and the top-N run on the CPU.
"""

from __future__ import annotations

from datetime import date

import numpy as np

from ...columnstore import Catalog, ExecutionContext, compare, equals
from ...columnstore.operators import (
    expand_bitset,
    fetch,
    group_by,
    hash_join,
    select,
    top_n,
)
from ...columnstore.operators.aggregate import AggKind
from ...jafar import Predicate
from ..datagen import TPCHData
from .common import QueryResult, charge_arithmetic, disc_price

NAME = "Q3"
SEGMENT = "BUILDING"
PIVOT = date(1995, 3, 15)


def run(ctx: ExecutionContext, catalog: Catalog) -> QueryResult:
    start = ctx.now_ps
    customer = catalog.table("customer")
    orders = catalog.table("orders")
    lineitem = catalog.table("lineitem")

    cust_pos = expand_bitset(ctx, select(
        ctx, "customer", equals(customer, "c_mktsegment", SEGMENT)))
    ord_pos = expand_bitset(ctx, select(
        ctx, "orders", compare(orders, "o_orderdate", Predicate.LT, PIVOT)))
    li_pos = expand_bitset(ctx, select(
        ctx, "lineitem", compare(lineitem, "l_shipdate", Predicate.GT, PIVOT)))

    c_key = fetch(ctx, ctx.storage.handle("customer", "c_custkey"),
                  cust_pos).column.values
    o_custkey = fetch(ctx, ctx.storage.handle("orders", "o_custkey"),
                      ord_pos).column.values
    co = hash_join(ctx, c_key, o_custkey)
    surviving_orders = ord_pos.positions[co.probe_positions]

    o_orderkey_all = orders["o_orderkey"].values
    o_orderdate_all = orders["o_orderdate"].values
    o_shippriority_all = orders["o_shippriority"].values
    o_keys = o_orderkey_all[surviving_orders]

    l_orderkey = fetch(ctx, ctx.storage.handle("lineitem", "l_orderkey"),
                       li_pos).column.values
    ol = hash_join(ctx, o_keys, l_orderkey)

    li_rows = li_pos.positions[ol.probe_positions]
    ord_rows = surviving_orders[ol.build_positions]

    price = lineitem["l_extendedprice"].values[li_rows]
    disc = lineitem["l_discount"].values[li_rows]
    revenue = disc_price(price, disc)
    charge_arithmetic(ctx, [price, disc])

    keys = np.column_stack([
        o_orderkey_all[ord_rows],
        o_orderdate_all[ord_rows],
        o_shippriority_all[ord_rows],
    ])
    grouped = group_by(ctx, keys, {
        "revenue": (revenue.astype(np.int64), AggKind.SUM),
    })
    order = top_n(ctx, [grouped.aggregates["revenue"],
                        grouped.keys[:, 1], grouped.keys[:, 0]], 10,
                  descending=[True, False, False]).order

    rows = []
    for g in order:
        rows.append({
            "l_orderkey": int(grouped.keys[g, 0]),
            "revenue": int(grouped.aggregates["revenue"][g]),
            "o_orderdate": int(grouped.keys[g, 1]),
            "o_shippriority": int(grouped.keys[g, 2]),
        })
    return QueryResult(NAME, rows, ctx.now_ps - start,
                       dict(ctx.profile.times_ps))


def reference(data: TPCHData) -> list[dict]:
    from ...columnstore import encode_date

    cust = data.customer
    orders = data.orders
    li = data.lineitem
    seg_dict = cust["c_mktsegment"].dictionary
    assert seg_dict is not None
    seg_code = seg_dict.encode(SEGMENT)
    pivot = encode_date(PIVOT)

    good_cust = set(cust["c_custkey"].values[
        cust["c_mktsegment"].values == seg_code].tolist())
    o_mask = (orders["o_orderdate"].values < pivot) & np.isin(
        orders["o_custkey"].values,
        np.fromiter(good_cust, dtype=np.int64, count=len(good_cust)))
    good_orders = orders["o_orderkey"].values[o_mask]
    odate = dict(zip(orders["o_orderkey"].values[o_mask].tolist(),
                     orders["o_orderdate"].values[o_mask].tolist()))

    l_mask = (li["l_shipdate"].values > pivot) & np.isin(
        li["l_orderkey"].values, good_orders)
    okeys = li["l_orderkey"].values[l_mask]
    revenue = disc_price(li["l_extendedprice"].values[l_mask],
                         li["l_discount"].values[l_mask]).astype(np.int64)
    totals: dict[int, int] = {}
    for key, rev in zip(okeys.tolist(), revenue.tolist()):
        totals[key] = totals.get(key, 0) + rev
    ranked = sorted(totals.items(),
                    key=lambda kv: (-kv[1], odate[kv[0]], kv[0]))[:10]
    return [{
        "l_orderkey": key,
        "revenue": rev,
        "o_orderdate": odate[key],
        "o_shippriority": 0,
    } for key, rev in ranked]
