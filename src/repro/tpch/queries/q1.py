"""TPC-H Q1: pricing summary report.

A scan-then-aggregate query: one high-selectivity date filter over lineitem
(``l_shipdate <= date '1998-12-01' - interval '90' day``; keeps ~98% of
rows) followed by a 4-group aggregation with heavy per-row arithmetic.  In
the Figure 4 profile this makes Q1 *moderately* memory-intensive: long
streaming reads, but real compute between them.
"""

from __future__ import annotations

from datetime import date

import numpy as np

from ...columnstore import Catalog, ExecutionContext, between, encode_date
from ...columnstore.operators import AggKind, expand_bitset, fetch, group_by, select, sort_by
from ..datagen import TPCHData
from .common import QueryResult, charge, charge_arithmetic, disc_price

NAME = "Q1"
CUTOFF = date(1998, 9, 2)  # 1998-12-01 minus 90 days

COLUMNS = ["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
           "l_discount", "l_tax"]


def run(ctx: ExecutionContext, catalog: Catalog) -> QueryResult:
    start = ctx.now_ps
    lineitem = catalog.table("lineitem")

    pred = between(lineitem, "l_shipdate", date(1992, 1, 1), CUTOFF)
    scan = select(ctx, "lineitem", pred)
    positions = expand_bitset(ctx, scan)

    cols = {}
    for name in COLUMNS:
        handle = ctx.storage.handle("lineitem", name)
        cols[name] = fetch(ctx, handle, positions).column.values

    qty = cols["l_quantity"]
    price = cols["l_extendedprice"]
    disc = cols["l_discount"]
    tax = cols["l_tax"]
    dprice = disc_price(price, disc)
    chrg = charge(price, disc, tax)
    charge_arithmetic(ctx, [price, disc, tax], passes=2.0)

    keys = np.column_stack([cols["l_returnflag"], cols["l_linestatus"]])
    grouped = group_by(ctx, keys, {
        "sum_qty": (qty, AggKind.SUM),
        "sum_base_price": (price, AggKind.SUM),
        "sum_disc_price": (dprice.astype(np.int64), AggKind.SUM),
        "sum_charge": (chrg.astype(np.int64), AggKind.SUM),
        "avg_qty": (qty, AggKind.AVG),
        "avg_price": (price, AggKind.AVG),
        "avg_disc": (disc, AggKind.AVG),
        "count_order": (qty, AggKind.COUNT),
    })
    order = sort_by(ctx, [grouped.keys[:, 0], grouped.keys[:, 1]]).order

    rf_dict = lineitem["l_returnflag"].dictionary
    ls_dict = lineitem["l_linestatus"].dictionary
    assert rf_dict is not None and ls_dict is not None
    rows = []
    for g in order:
        rows.append({
            "l_returnflag": rf_dict.decode(int(grouped.keys[g, 0])),
            "l_linestatus": ls_dict.decode(int(grouped.keys[g, 1])),
            "sum_qty": int(grouped.aggregates["sum_qty"][g]),
            "sum_base_price": int(grouped.aggregates["sum_base_price"][g]),
            "sum_disc_price": int(grouped.aggregates["sum_disc_price"][g]),
            "sum_charge": int(grouped.aggregates["sum_charge"][g]),
            "avg_disc": float(grouped.aggregates["avg_disc"][g]),
            "count_order": int(grouped.aggregates["count_order"][g]),
        })
    return QueryResult(NAME, rows, ctx.now_ps - start,
                       dict(ctx.profile.times_ps))


def reference(data: TPCHData) -> list[dict]:
    """Pure-NumPy recomputation for validation."""
    li = data.lineitem
    mask = li["l_shipdate"].values <= encode_date(CUTOFF)
    rf = li["l_returnflag"].values[mask]
    ls = li["l_linestatus"].values[mask]
    qty = li["l_quantity"].values[mask]
    price = li["l_extendedprice"].values[mask]
    disc = li["l_discount"].values[mask]
    tax = li["l_tax"].values[mask]
    rf_dict = li["l_returnflag"].dictionary
    ls_dict = li["l_linestatus"].dictionary
    assert rf_dict is not None and ls_dict is not None

    rows = []
    for rf_code in np.unique(rf):
        for ls_code in np.unique(ls[rf == rf_code]):
            sel = (rf == rf_code) & (ls == ls_code)
            rows.append({
                "l_returnflag": rf_dict.decode(int(rf_code)),
                "l_linestatus": ls_dict.decode(int(ls_code)),
                "sum_qty": int(qty[sel].sum()),
                "sum_base_price": int(price[sel].sum()),
                "sum_disc_price": int(disc_price(price[sel], disc[sel])
                                      .astype(np.int64).sum()),
                "sum_charge": int(charge(price[sel], disc[sel], tax[sel])
                                  .astype(np.int64).sum()),
                "avg_disc": float(disc[sel].mean()),
                "count_order": int(sel.sum()),
            })
    rows.sort(key=lambda r: (r["l_returnflag"], r["l_linestatus"]))
    return rows
