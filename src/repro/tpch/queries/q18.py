"""TPC-H Q18: large volume customers.

A whole-table group-by over lineitem (no filter!) with a HAVING clause,
followed by two joins and a top-100 sort.  The big hash aggregation gives
this query the most *irregular* memory behaviour of the five — hash-table
probes scattered over a table sized by the order count — which is why its
idle periods sit at the long end of Figure 4.
"""

from __future__ import annotations

from ...columnstore import Catalog, ExecutionContext
from ...columnstore.operators import (
    AggKind,
    fetch,
    group_by,
    hash_join,
    top_n,
)
from ...columnstore.positions import PositionList
from ..datagen import TPCHData
from .common import QueryResult

NAME = "Q18"
QUANTITY_THRESHOLD = 300


def run(ctx: ExecutionContext, catalog: Catalog) -> QueryResult:
    start = ctx.now_ps
    orders = catalog.table("orders")
    customer = catalog.table("customer")
    lineitem = catalog.table("lineitem")

    # Whole-table aggregation: sum(l_quantity) per order.
    all_rows = PositionList.all_rows(lineitem.num_rows)
    l_orderkey = fetch(ctx, ctx.storage.handle("lineitem", "l_orderkey"),
                       all_rows).column.values
    l_quantity = fetch(ctx, ctx.storage.handle("lineitem", "l_quantity"),
                       all_rows).column.values
    per_order = group_by(ctx, l_orderkey, {
        "sum_qty": (l_quantity, AggKind.SUM),
    })
    having = per_order.aggregates["sum_qty"] > QUANTITY_THRESHOLD
    big_orders = per_order.keys[having]
    big_sums = per_order.aggregates["sum_qty"][having]

    # Join the qualifying orders with the orders table ...
    o_orderkey = orders["o_orderkey"].values
    oj = hash_join(ctx, big_orders, o_orderkey)
    ord_rows = oj.probe_positions
    sums = big_sums[oj.build_positions]

    # ... and with customer.
    c_custkey = customer["c_custkey"].values
    cj = hash_join(ctx, orders["o_custkey"].values[ord_rows], c_custkey)
    cust_rows = cj.probe_positions
    ord_rows = ord_rows[cj.build_positions]
    sums = sums[cj.build_positions]

    totalprice = orders["o_totalprice"].values[ord_rows]
    orderdate = orders["o_orderdate"].values[ord_rows]
    order = top_n(ctx, [totalprice, orderdate,
                        orders["o_orderkey"].values[ord_rows]],
                  100, descending=[True, False, False]).order

    name_dict = customer["c_name"].dictionary
    assert name_dict is not None
    rows = []
    for g in order:
        rows.append({
            "c_name": name_dict.decode(
                int(customer["c_name"].values[cust_rows[g]])),
            "c_custkey": int(customer["c_custkey"].values[cust_rows[g]]),
            "o_orderkey": int(orders["o_orderkey"].values[ord_rows[g]]),
            "o_orderdate": int(orderdate[g]),
            "o_totalprice": int(totalprice[g]),
            "sum_qty": int(sums[g]),
        })
    return QueryResult(NAME, rows, ctx.now_ps - start,
                       dict(ctx.profile.times_ps))


def reference(data: TPCHData) -> list[dict]:
    li = data.lineitem
    orders = data.orders
    customer = data.customer
    sums: dict[int, int] = {}
    for key, qty in zip(li["l_orderkey"].values.tolist(),
                        li["l_quantity"].values.tolist()):
        sums[key] = sums.get(key, 0) + qty
    big = {k: v for k, v in sums.items() if v > QUANTITY_THRESHOLD}

    okeys = orders["o_orderkey"].values
    name_dict = customer["c_name"].dictionary
    assert name_dict is not None
    cust_by_key = {int(k): i for i, k in
                   enumerate(customer["c_custkey"].values.tolist())}
    candidates = []
    for i, okey in enumerate(okeys.tolist()):
        if okey in big:
            ci = cust_by_key[int(orders["o_custkey"].values[i])]
            candidates.append({
                "c_name": name_dict.decode(int(customer["c_name"].values[ci])),
                "c_custkey": int(customer["c_custkey"].values[ci]),
                "o_orderkey": okey,
                "o_orderdate": int(orders["o_orderdate"].values[i]),
                "o_totalprice": int(orders["o_totalprice"].values[i]),
                "sum_qty": big[okey],
            })
    candidates.sort(key=lambda r: (-r["o_totalprice"], r["o_orderdate"],
                                   r["o_orderkey"]))
    return candidates[:100]
