"""Declarative plan-tree variants of the profiled queries.

The hand-written pipelines in ``q1.py``–``q22.py`` are *physical* plans with
full control over scan placement (what a tuned engine executes).  These are
the same workloads expressed as logical plan trees for the generic
:class:`~repro.columnstore.executor.QueryExecutor` — they exercise the
optimizer-facing path and demonstrate the engine's declarative API on real
TPC-H shapes.  The plan algebra has no computed-expression columns, so each
variant reports the aggregable sub-results (counts/sums of stored columns);
tests verify those against the physical pipelines and NumPy.
"""

from __future__ import annotations

from datetime import date

from ...columnstore import (
    Aggregate,
    AggregateSpec,
    Catalog,
    ExecutionContext,
    Join,
    OrderBy,
    PlanNode,
    Project,
    QueryExecutor,
    ResultSet,
    Scan,
    Select,
    between,
    compare,
    equals,
)
from ...columnstore.operators import AggKind
from ...jafar import Predicate
from .q1 import CUTOFF
from .q3 import PIVOT, SEGMENT
from .q6 import DISCOUNT_HIGH, DISCOUNT_LOW, QUANTITY_LIMIT, YEAR_END, YEAR_START


def q6_plan(catalog: Catalog) -> PlanNode:
    """Q6's filter + scalar aggregation over the stored columns."""
    lineitem = catalog.table("lineitem")
    return Aggregate(
        Select(Scan("lineitem"), (
            between(lineitem, "l_shipdate", YEAR_START, YEAR_END),
            between(lineitem, "l_discount", DISCOUNT_LOW, DISCOUNT_HIGH),
            compare(lineitem, "l_quantity", Predicate.LT, QUANTITY_LIMIT),
        )),
        keys=(),
        aggregates=(
            AggregateSpec("rows_selected", "l_quantity", AggKind.COUNT),
            AggregateSpec("sum_price", "l_extendedprice", AggKind.SUM),
        ),
    )


def q1_plan(catalog: Catalog) -> PlanNode:
    """Q1's grouping over the stored columns (counts and plain sums)."""
    lineitem = catalog.table("lineitem")
    return OrderBy(
        Aggregate(
            Select(Scan("lineitem"), (
                between(lineitem, "l_shipdate", date(1992, 1, 1), CUTOFF),
            )),
            keys=("l_returnflag", "l_linestatus"),
            aggregates=(
                AggregateSpec("sum_qty", "l_quantity", AggKind.SUM),
                AggregateSpec("sum_base_price", "l_extendedprice",
                              AggKind.SUM),
                AggregateSpec("avg_disc", "l_discount", AggKind.AVG),
                AggregateSpec("count_order", "l_quantity", AggKind.COUNT),
            ),
        ),
        keys=("l_returnflag", "l_linestatus"),
    )


def q3_join_plan(catalog: Catalog) -> PlanNode:
    """Q3's customer⋈orders core: BUILDING customers' pre-pivot orders."""
    customer = catalog.table("customer")
    orders = catalog.table("orders")
    return Aggregate(
        Join(
            Project(Select(Scan("customer"),
                           (equals(customer, "c_mktsegment", SEGMENT),)),
                    ("c_custkey",)),
            Project(Select(Scan("orders"),
                           (compare(orders, "o_orderdate", Predicate.LT,
                                    PIVOT),)),
                    ("o_custkey", "o_orderkey", "o_totalprice")),
            left_key="c_custkey", right_key="o_custkey",
        ),
        keys=(),
        aggregates=(
            AggregateSpec("qualifying_orders", "o_orderkey", AggKind.COUNT),
            AggregateSpec("sum_totalprice", "o_totalprice", AggKind.SUM),
        ),
    )


def run_plan(ctx: ExecutionContext, catalog: Catalog,
             plan: PlanNode) -> ResultSet:
    """Execute one declarative variant."""
    return QueryExecutor(ctx, catalog).execute(plan)
