"""TPC-H Q22: global sales opportunity.

The most compute-per-byte query of the five: string prefix predicates
(country codes out of c_phone — dictionary-encoded, so they lower to code
ranges JAFAR can scan), a correlated scalar average, an anti-join against
orders, and a small group-by.  Little streaming, lots of pointer-chasing —
the long-idle-period end of Figure 4.
"""

from __future__ import annotations

import numpy as np

from ...columnstore import Catalog, ExecutionContext, prefix
from ...columnstore.operators import (
    AggKind,
    ScanResult,
    expand_bitset,
    fetch,
    group_by,
    scalar_aggregate,
    select,
    semi_join_mask,
    sort_by,
)
from ...columnstore.positions import PositionList
from ..datagen import TPCHData
from .common import QueryResult, charge_arithmetic

NAME = "Q22"
COUNTRY_CODES = ("13", "31", "23", "29", "30", "18", "17")


def run(ctx: ExecutionContext, catalog: Catalog) -> QueryResult:
    start = ctx.now_ps
    customer = catalog.table("customer")
    orders = catalog.table("orders")

    # Seven prefix scans over c_phone, OR-combined.
    bits = None
    for code in COUNTRY_CODES:
        scan = select(ctx, "customer", prefix(customer, "c_phone", code))
        bits = scan.bitvector if bits is None else (bits | scan.bitvector)
    assert bits is not None
    in_codes = expand_bitset(ctx, ScanResult(bits, 0, scan.path))

    acct = fetch(ctx, ctx.storage.handle("customer", "c_acctbal"),
                 in_codes).column.values

    # Correlated subquery: avg(c_acctbal) over positive balances in-code.
    positive = acct[acct > 0]
    charge_arithmetic(ctx, [acct])
    avg_result = scalar_aggregate(ctx, positive, AggKind.AVG)
    threshold = float(avg_result.value)

    rich = acct > threshold
    rich_pos = PositionList(in_codes.positions[rich])
    rich_acct = acct[rich]

    custkeys = fetch(ctx, ctx.storage.handle("customer", "c_custkey"),
                     rich_pos).column.values
    no_orders = semi_join_mask(ctx, custkeys, orders["o_custkey"].values,
                               anti=True)

    final_pos = rich_pos.positions[no_orders]
    final_acct = rich_acct[no_orders]
    phones = customer["c_phone"].values[final_pos]
    phone_dict = customer["c_phone"].dictionary
    assert phone_dict is not None
    cntry = np.array(
        [int(phone_dict.decode(int(p))[:2]) for p in phones],
        dtype=np.int64)

    grouped = group_by(ctx, cntry, {
        "numcust": (final_acct, AggKind.COUNT),
        "totacctbal": (final_acct, AggKind.SUM),
    })
    order = sort_by(ctx, [grouped.keys]).order

    rows = []
    for g in order:
        rows.append({
            "cntrycode": str(int(grouped.keys[g])),
            "numcust": int(grouped.aggregates["numcust"][g]),
            "totacctbal": int(grouped.aggregates["totacctbal"][g]),
        })
    return QueryResult(NAME, rows, ctx.now_ps - start,
                       dict(ctx.profile.times_ps))


def reference(data: TPCHData) -> list[dict]:
    customer = data.customer
    orders = data.orders
    phone_dict = customer["c_phone"].dictionary
    assert phone_dict is not None
    phones = [phone_dict.decode(int(p))
              for p in customer["c_phone"].values]
    codes = np.array([p[:2] for p in phones])
    in_codes = np.isin(codes, np.array(COUNTRY_CODES))
    acct = customer["c_acctbal"].values
    threshold = acct[in_codes & (acct > 0)].mean()
    has_order = np.isin(customer["c_custkey"].values,
                        orders["o_custkey"].values)
    final = in_codes & (acct > threshold) & ~has_order
    rows = []
    for code in sorted(set(codes[final].tolist())):
        sel = final & (codes == code)
        rows.append({
            "cntrycode": code,
            "numcust": int(sel.sum()),
            "totacctbal": int(acct[sel].sum()),
        })
    return rows
