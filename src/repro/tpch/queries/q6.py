"""TPC-H Q6: forecasting revenue change.

The purest filter query in the suite — three conjunctive range predicates
over lineitem and a single scalar sum, no joins, almost no per-row compute.
This is the *most memory-bound* of the profiled queries, which is why its
memory-controller idle periods are the shortest in Figure 4.

Plan shape differs by mode: with NDP on, all three predicates run as
full-column JAFAR scans whose bitsets AND together (bitset ANDing is nearly
free); on the CPU, the first scan filters and the remaining predicates
refine the surviving positions.
"""

from __future__ import annotations

from datetime import date

from ...columnstore import Catalog, ExecutionContext, between, compare, encode_date
from ...columnstore.operators import expand_bitset, fetch, scalar_aggregate, select
from ...columnstore.operators.aggregate import AggKind, _charge_stream
from ...jafar import Predicate
from ..datagen import TPCHData
from .common import QueryResult, charge_arithmetic

NAME = "Q6"
YEAR_START = date(1994, 1, 1)
YEAR_END = date(1994, 12, 31)      # BETWEEN is inclusive; spec is < 1995-01-01
DISCOUNT_LOW = 5                    # 0.05 in fixed-point hundredths
DISCOUNT_HIGH = 7                   # 0.07
QUANTITY_LIMIT = 24                 # l_quantity < 24


def run(ctx: ExecutionContext, catalog: Catalog) -> QueryResult:
    start = ctx.now_ps
    lineitem = catalog.table("lineitem")

    date_pred = between(lineitem, "l_shipdate", YEAR_START, YEAR_END)
    disc_pred = between(lineitem, "l_discount", DISCOUNT_LOW, DISCOUNT_HIGH)
    qty_pred = compare(lineitem, "l_quantity", Predicate.LT, QUANTITY_LIMIT)

    if ctx.use_ndp:
        # Three NDP scans; only bitsets cross the bus; AND them on the CPU.
        bits = select(ctx, "lineitem", date_pred).bitvector
        bits = bits & select(ctx, "lineitem", disc_pred).bitvector
        bits = bits & select(ctx, "lineitem", qty_pred).bitvector
        with ctx.timed("bitset_and"):
            _charge_stream(ctx, 2 * max(bits.num_rows // 8, 64), 2.0)
        positions = bits.to_positions()
    else:
        scan = select(ctx, "lineitem", date_pred)
        positions = expand_bitset(ctx, scan)
        for pred in (disc_pred, qty_pred):
            handle = ctx.storage.handle("lineitem", pred.column_name)
            values = fetch(ctx, handle, positions).column.values
            with ctx.timed("select.refine"):
                _charge_stream(ctx, max(values.nbytes, 64), 8.0)
                keep = (values >= pred.low) & (values <= pred.high)
            from ...columnstore.positions import PositionList
            positions = PositionList(positions.positions[keep])

    price = fetch(ctx, ctx.storage.handle("lineitem", "l_extendedprice"),
                  positions).column.values
    disc = fetch(ctx, ctx.storage.handle("lineitem", "l_discount"),
                 positions).column.values
    # revenue = sum(l_extendedprice * l_discount); discount is hundredths,
    # so the product of fixed-points needs one rescale.
    revenue_terms = (price * disc) // 100
    charge_arithmetic(ctx, [price, disc])
    total = scalar_aggregate(ctx, revenue_terms, AggKind.SUM)

    rows = [{"revenue": int(total.value), "rows_selected": positions.count()}]
    return QueryResult(NAME, rows, ctx.now_ps - start,
                       dict(ctx.profile.times_ps))


def reference(data: TPCHData) -> list[dict]:
    li = data.lineitem
    ship = li["l_shipdate"].values
    mask = (
        (ship >= encode_date(YEAR_START))
        & (ship <= encode_date(YEAR_END))
        & (li["l_discount"].values >= DISCOUNT_LOW)
        & (li["l_discount"].values <= DISCOUNT_HIGH)
        & (li["l_quantity"].values < QUANTITY_LIMIT)
    )
    revenue = int(((li["l_extendedprice"].values[mask]
                    * li["l_discount"].values[mask]) // 100).sum())
    return [{"revenue": revenue, "rows_selected": int(mask.sum())}]
