"""Shared plumbing for the TPC-H query implementations.

Queries are written as *physical* operator pipelines (the way a bulk
engine's plans actually execute), not plan trees, so each one controls
exactly which selects are full-column (JAFAR-eligible) and which are
refinements.  Every query returns a :class:`QueryResult` whose rows are
plain Python values, and each module ships a pure-NumPy ``reference``
implementation the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

import numpy as np

from ...columnstore import ExecutionContext
from ...columnstore.operators.aggregate import _charge_stream
from ...columnstore.types import DECIMAL_SCALE

#: Cycles per row for in-flight arithmetic (e.g. price * (1 - discount)).
ARITH_CYCLES_PER_ROW = 2.0


@dataclass
class QueryResult:
    """Output of one TPC-H query run."""

    name: str
    rows: list[dict]
    duration_ps: int
    operator_times_ps: dict[str, int] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return len(self.rows)


def charge_arithmetic(ctx: ExecutionContext, arrays: list[np.ndarray],
                      passes: float = 1.0) -> None:
    """Charge streaming arithmetic over in-flight arrays."""
    total = sum(int(a.nbytes) for a in arrays)
    if total:
        _charge_stream(ctx, total,
                       ARITH_CYCLES_PER_ROW * passes * 8)


def money(fixed) -> float:
    """Fixed-point decimal to user-facing float."""
    return float(fixed) / DECIMAL_SCALE


def disc_price(extendedprice: np.ndarray, discount: np.ndarray) -> np.ndarray:
    """``l_extendedprice * (1 - l_discount)`` in float dollars."""
    return (extendedprice / DECIMAL_SCALE) * (1.0 - discount / DECIMAL_SCALE)


def charge(extendedprice: np.ndarray, discount: np.ndarray,
           tax: np.ndarray) -> np.ndarray:
    """``l_extendedprice * (1 - l_discount) * (1 + l_tax)`` in dollars."""
    return disc_price(extendedprice, discount) * (1.0 + tax / DECIMAL_SCALE)


D = date  # shorthand used by the query modules
