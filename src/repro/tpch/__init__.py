"""TPC-H substrate: schemas, a seeded scaled-down dbgen, and the five
queries the paper profiles on MonetDB (Figure 4)."""

from .datagen import TPCHData, generate
from .queries import PROFILED_QUERIES, QueryResult
from .schema import MKT_SEGMENTS, SF1_ROWS, TABLES, rows_at_scale

__all__ = [
    "MKT_SEGMENTS",
    "PROFILED_QUERIES",
    "QueryResult",
    "SF1_ROWS",
    "TABLES",
    "TPCHData",
    "generate",
    "rows_at_scale",
]
