"""Tests for the §4 extension accelerators."""

import numpy as np
import pytest

from repro.config import GEM5_PLATFORM
from repro.errors import JafarProgrammingError
from repro.jafar import pack_mask
from repro.jafar.extensions import (
    BitonicNetwork,
    FieldPredicate,
    NdpAggregator,
    NdpProjector,
    NdpSorter,
    RowStoreFilter,
    fnv1a,
    fnv1a_block,
    multiplicative_hash,
    multiplicative_hash_block,
)
from repro.system import Machine


def make_engine(engine_cls, **kwargs):
    machine = Machine(GEM5_PLATFORM)
    controller = machine.controller
    return machine, engine_cls(machine.timings, controller.mapping, 0,
                               controller.channels[0].dimms[0],
                               machine.memory,
                               GEM5_PLATFORM.jafar_cost, **kwargs)


def place(machine, values):
    mapping = machine.alloc_array(values, dimm=0)
    return machine.vm.translate(mapping.vaddr)


class TestHashUnits:
    def test_multiplicative_scalar_vs_block(self):
        keys = np.arange(100, dtype=np.int64) * 7919
        block = multiplicative_hash_block(keys, 10)
        for key, hashed in zip(keys.tolist(), block.tolist()):
            assert multiplicative_hash(key, 10) == hashed

    def test_multiplicative_range(self):
        keys = np.arange(1000, dtype=np.int64)
        hashed = multiplicative_hash_block(keys, 6)
        assert hashed.min() >= 0 and hashed.max() < 64

    def test_multiplicative_spreads(self):
        """Sequential keys should spread across buckets, not cluster."""
        keys = np.arange(64 * 32, dtype=np.int64)
        hashed = multiplicative_hash_block(keys, 6)
        counts = np.bincount(hashed, minlength=64)
        assert counts.max() < 4 * counts.mean()

    def test_fnv_scalar_vs_block(self):
        keys = np.array([0, 1, 255, 2**40 + 7, 2**63 - 1], dtype=np.int64)
        block = fnv1a_block(keys)
        for key, hashed in zip(keys.tolist(), block.tolist()):
            assert fnv1a(key) == hashed

    def test_fnv_known_zero_vector(self):
        # FNV-1a of eight zero bytes is a fixed constant.
        assert fnv1a(0) == fnv1a_block(np.array([0], dtype=np.int64))[0]

    def test_width_validation(self):
        with pytest.raises(JafarProgrammingError):
            multiplicative_hash(1, 0)
        with pytest.raises(JafarProgrammingError):
            multiplicative_hash_block(np.array([1]), 64)


class TestNdpAggregator:
    def test_scalar_aggregates(self):
        machine, agg = make_engine(NdpAggregator)
        values = np.random.default_rng(0).integers(-100, 100, 5000,
                                                   dtype=np.int64)
        addr = place(machine, values)
        t = 0
        for kind, expected in (("sum", values.sum()), ("min", values.min()),
                               ("max", values.max()), ("count", values.size)):
            result = agg.scalar(addr, values.size, kind, t)
            assert result.value == expected
            t = result.end_ps
        avg = agg.scalar(addr, values.size, "avg", t)
        assert avg.value == pytest.approx(values.mean())

    def test_fused_filter_aggregate(self):
        """Aggregate restricted to a prior select's bitset."""
        machine, agg = make_engine(NdpAggregator)
        values = np.arange(1000, dtype=np.int64)
        mask = values % 3 == 0
        addr = place(machine, values)
        mask_addr = place(machine, pack_mask(mask))
        result = agg.scalar(addr, values.size, "sum", 0, mask_addr=mask_addr)
        assert result.value == values[mask].sum()

    def test_aggregation_time_is_one_streaming_pass(self):
        machine, agg = make_engine(NdpAggregator)
        values = np.zeros(8192, dtype=np.int64)
        addr = place(machine, values)
        result = agg.scalar(addr, values.size, "sum", 0)
        t = machine.timings
        floor = (values.nbytes // t.burst_bytes) * t.cycles_to_ps(t.tccd)
        assert floor <= result.duration_ps <= 2 * floor

    def test_group_by_within_bucket_limit_is_single_pass(self):
        machine, agg = make_engine(NdpAggregator)
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 32, 4000, dtype=np.int64)  # 32 <= 64 buckets
        values = rng.integers(0, 100, 4000, dtype=np.int64)
        result = agg.group_by_sum(place(machine, keys),
                                  place(machine, values), 4000, 0)
        assert result.passes == 1 and not result.partitioned
        for key, total in zip(result.keys.tolist(), result.sums.tolist()):
            assert total == values[keys == key].sum()

    def test_group_by_beyond_buckets_goes_hierarchical(self):
        machine, agg = make_engine(NdpAggregator)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 500, 4000, dtype=np.int64)  # > 64 buckets
        values = rng.integers(0, 100, 4000, dtype=np.int64)
        scratch = machine.alloc_zeros(4000 * 16, dimm=0)
        scratch_addr = machine.vm.translate(scratch.vaddr)
        result = agg.group_by_sum(place(machine, keys),
                                  place(machine, values), 4000, 0,
                                  scratch_addr=scratch_addr)
        assert result.passes == 2 and result.partitioned
        # Hierarchy costs extra passes: slower than a small-domain group-by.
        small = agg.group_by_sum(place(machine, keys % 32),
                                 place(machine, values), 4000, result.end_ps)
        assert result.duration_ps > small.duration_ps

    def test_hierarchical_without_scratch_raises(self):
        machine, agg = make_engine(NdpAggregator)
        keys = np.arange(1000, dtype=np.int64)
        values = np.ones(1000, dtype=np.int64)
        with pytest.raises(JafarProgrammingError, match="hierarchical"):
            agg.group_by_sum(place(machine, keys), place(machine, values),
                             1000, 0)

    def test_validation(self):
        machine, agg = make_engine(NdpAggregator)
        addr = place(machine, np.ones(8, dtype=np.int64))
        with pytest.raises(JafarProgrammingError):
            agg.scalar(addr, 0, "sum", 0)
        with pytest.raises(JafarProgrammingError):
            agg.scalar(addr, 8, "median", 0)


class TestNdpProjector:
    def test_project_gathers_qualifying_values(self):
        machine, proj = make_engine(NdpProjector)
        values = np.arange(2048, dtype=np.int64) * 3
        mask = (values % 2 == 0) & (values > 100)
        addr = place(machine, values)
        mask_addr = place(machine, pack_mask(mask))
        out = machine.alloc_zeros(values.nbytes, dimm=0)
        out_addr = machine.vm.translate(out.vaddr)
        result = proj.project(addr, values.size, mask_addr, out_addr, 0)
        assert result.values_written == int(mask.sum())
        got = machine.memory.view_words(out_addr, result.values_written)
        assert (got == values[mask]).all()

    def test_output_traffic_proportional_to_matches(self):
        machine, proj = make_engine(NdpProjector)
        values = np.arange(8192, dtype=np.int64)
        addr = place(machine, values)
        out = machine.alloc_zeros(values.nbytes, dimm=0)
        out_addr = machine.vm.translate(out.vaddr)
        sparse_mask = place(machine, pack_mask(values < 64))
        dense_mask = place(machine, pack_mask(values >= 0))
        sparse = proj.project(addr, values.size, sparse_mask, out_addr, 0)
        dense = proj.project(addr, values.size, dense_mask, out_addr,
                             sparse.end_ps)
        assert sparse.bursts_written < dense.bursts_written
        assert sparse.duration_ps < dense.duration_ps

    def test_empty_selection(self):
        machine, proj = make_engine(NdpProjector)
        values = np.arange(256, dtype=np.int64)
        addr = place(machine, values)
        mask_addr = place(machine, pack_mask(np.zeros(256, dtype=bool)))
        out = machine.alloc_zeros(64, dimm=0)
        result = proj.project(addr, 256, mask_addr,
                              machine.vm.translate(out.vaddr), 0)
        assert result.values_written == 0
        assert result.bursts_written == 0

    def test_row_store_projection(self):
        machine, proj = make_engine(NdpProjector)
        # 16-byte records: two int64 fields.
        n = 512
        a = np.arange(n, dtype=np.int64)
        b = a * 7
        records = np.empty(n * 2, dtype=np.int64)
        records[0::2] = a
        records[1::2] = b
        base = place(machine, records)
        out = machine.alloc_zeros(n * 8, dimm=0)
        out_addr = machine.vm.translate(out.vaddr)
        result = proj.project_row_store(base, n, 16, field_offset=8,
                                        field_bytes=8, out_addr=out_addr,
                                        start_ps=0)
        got = machine.memory.view_words(out_addr, n)
        assert (got == b).all()
        assert result.values_written == n

    def test_row_store_validation(self):
        machine, proj = make_engine(NdpProjector)
        with pytest.raises(JafarProgrammingError, match="fit"):
            proj.project_row_store(0, 4, 16, field_offset=12, field_bytes=8,
                                   out_addr=4096, start_ps=0)


class TestBitonicNetwork:
    def test_stage_count_formula(self):
        for k in (2, 4, 16, 256):
            net = BitonicNetwork(k)
            log_k = k.bit_length() - 1
            assert net.num_stages == log_k * (log_k + 1) // 2

    def test_sorts_exactly(self):
        rng = np.random.default_rng(5)
        net = BitonicNetwork(64)
        for _ in range(5):
            block = rng.integers(-1000, 1000, 64, dtype=np.int64)
            assert (net.sort_block(block) == np.sort(block)).all()

    def test_wrong_block_size_raises(self):
        with pytest.raises(JafarProgrammingError):
            BitonicNetwork(16).sort_block(np.zeros(8, dtype=np.int64))

    def test_invalid_width(self):
        with pytest.raises(JafarProgrammingError):
            BitonicNetwork(100)
        with pytest.raises(JafarProgrammingError):
            BitonicNetwork(1)


class TestNdpSorter:
    def test_sorts_into_output_region(self):
        machine, sorter = make_engine(NdpSorter, network_k=64)
        rng = np.random.default_rng(6)
        values = rng.integers(0, 10**6, 5000, dtype=np.int64)
        addr = place(machine, values)
        out = machine.alloc_zeros(values.nbytes, dimm=0)
        out_addr = machine.vm.translate(out.vaddr)
        result = sorter.sort(addr, values.size, out_addr, 0)
        got = machine.memory.view_words(out_addr, values.size)
        assert (got == np.sort(values)).all()
        assert result.merge_passes == int(np.ceil(np.log2(-(-5000 // 64))))

    def test_block_sized_input_needs_no_merge(self):
        machine, sorter = make_engine(NdpSorter, network_k=256)
        values = np.random.default_rng(7).permutation(256).astype(np.int64)
        addr = place(machine, values)
        out = machine.alloc_zeros(values.nbytes, dimm=0)
        result = sorter.sort(addr, 256, machine.vm.translate(out.vaddr), 0)
        assert result.merge_passes == 0

    def test_merge_passes_cost_time(self):
        machine, sorter = make_engine(NdpSorter, network_k=64)
        small = np.random.default_rng(8).integers(0, 100, 64, dtype=np.int64)
        big = np.random.default_rng(8).integers(0, 100, 4096, dtype=np.int64)
        a_small = place(machine, small)
        a_big = place(machine, big)
        out = machine.alloc_zeros(big.nbytes, dimm=0)
        out_addr = machine.vm.translate(out.vaddr)
        t_small = sorter.sort(a_small, 64, out_addr, 0)
        t_big = sorter.sort(a_big, 4096, out_addr, t_small.end_ps)
        # 64x the data plus merge passes: far more than 64x a blocks' time.
        assert t_big.duration_ps > 32 * t_small.duration_ps


class TestRowStoreFilter:
    def make_records(self, machine, n=1000, seed=9):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 100, n, dtype=np.int64)
        b = rng.integers(0, 100, n, dtype=np.int64)
        records = np.empty(n * 2, dtype=np.int64)
        records[0::2] = a
        records[1::2] = b
        return a, b, place(machine, records)

    def test_multi_attribute_conjunction(self):
        machine, filt = make_engine(RowStoreFilter)
        a, b, base = self.make_records(machine)
        out = machine.alloc_zeros(256, dimm=0)
        out_addr = machine.vm.translate(out.vaddr)
        result = filt.filter(base, a.size, 16, [
            FieldPredicate(0, 8, 10, 50),
            FieldPredicate(8, 8, 0, 30),
        ], out_addr, 0)
        expected = (a >= 10) & (a <= 50) & (b <= 30)
        assert result.matches == int(expected.sum())
        from repro.jafar import unpack_mask
        got = unpack_mask(machine.memory.read(out_addr, -(-a.size // 8)),
                          a.size)
        assert (got == expected).all()

    def test_predicates_beyond_comparators_need_more_passes(self):
        machine, filt = make_engine(RowStoreFilter)
        a, b, base = self.make_records(machine)
        out_addr = machine.vm.translate(machine.alloc_zeros(256, dimm=0).vaddr)
        few = filt.filter(base, a.size, 16,
                          [FieldPredicate(0, 8, 0, 50)], out_addr, 0)
        many = filt.filter(base, a.size, 16,
                           [FieldPredicate(0, 8, 0, 50)] * 5,  # > 4 pairs
                           out_addr, few.end_ps)
        assert few.passes == 1
        assert many.passes == 2
        assert many.duration_ps > 1.5 * few.duration_ps

    def test_narrow_fields(self):
        machine, filt = make_engine(RowStoreFilter)
        n = 256
        raw = np.zeros(n * 8, dtype=np.uint8)
        raw[0::8] = np.arange(n) % 200  # 1-byte field at offset 0
        mapping = machine.alloc_array(raw, dimm=0)
        base = machine.vm.translate(mapping.vaddr)
        out_addr = machine.vm.translate(machine.alloc_zeros(64, dimm=0).vaddr)
        result = filt.filter(base, n, 8, [FieldPredicate(0, 1, 0, 99)],
                             out_addr, 0)
        expected = int((np.arange(n) % 200 <= 99).sum())
        assert result.matches == expected

    def test_validation(self):
        machine, filt = make_engine(RowStoreFilter)
        with pytest.raises(JafarProgrammingError):
            filt.filter(0, 10, 8, [], 4096, 0)
        with pytest.raises(JafarProgrammingError, match="exceeds"):
            filt.filter(0, 10, 8, [FieldPredicate(4, 8, 0, 1)], 4096, 0)
        with pytest.raises(JafarProgrammingError):
            FieldPredicate(0, 3, 0, 1)
        with pytest.raises(JafarProgrammingError):
            FieldPredicate(0, 8, 5, 1)
