"""Tests for the JAFAR device, driver, API, ownership, and multi-DIMM paths."""

import numpy as np
import pytest

from repro.config import GEM5_PLATFORM
from repro.dram import Agent
from repro.errors import (
    DRAMOwnershipError,
    JafarProgrammingError,
    PinningError,
)
from repro.jafar import (
    JAFAR_EFAULT,
    JAFAR_EINVAL,
    JAFAR_OK,
    Reg,
    Status,
    modeled_words_per_cycle,
    positions_from_mask,
    select_jafar,
    strerror,
)
from repro.system import Machine

N = 1 << 13  # 8K rows = one 64 KiB page


@pytest.fixture()
def machine():
    return Machine(GEM5_PLATFORM)


def make_values(n=N, seed=1):
    return np.random.default_rng(seed).integers(0, 1_000_000, n, dtype=np.int64)


def setup_column(machine, values, pinned=True):
    col = machine.alloc_array(values, dimm=0, pinned=pinned)
    out = machine.alloc_zeros(max(values.size // 8, 1), dimm=0, pinned=True)
    return col, out


class TestDevice:
    def test_functional_correctness(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        result = machine.driver.select_page(col.vaddr, N, 100, 500_000, out.vaddr)
        expected = np.flatnonzero((values >= 100) & (values <= 500_000))
        assert result.matches == expected.size
        buf = machine.read_array(out, N // 8, dtype=np.uint8)
        assert (positions_from_mask(buf, N) == expected).all()

    def test_status_protocol(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        device = machine.devices[0]
        assert device.registers.status is Status.IDLE
        machine.driver.select_page(col.vaddr, N, 0, 10, out.vaddr)
        assert device.registers.status is Status.DONE
        assert device.mmio_read(Reg.NUM_MATCHES) == device.stats.extra.get(
            "unused", device.mmio_read(Reg.NUM_MATCHES))

    def test_time_is_selectivity_invariant(self, machine):
        """§3.2: JAFAR has constant execution time irrespective of
        selectivity — the buffer writes back regardless of outcomes."""
        values = make_values()
        durations = []
        for low, high in ((-10, -1), (0, 500_000), (0, 2_000_000)):
            m = Machine(GEM5_PLATFORM)
            col, out = setup_column(m, values)
            result = m.driver.select_page(col.vaddr, N, low, high, out.vaddr)
            durations.append(result.duration_ps)
        assert max(durations) <= min(durations) * 1.01

    def test_device_faster_than_bus_would_allow_to_cpu(self, machine):
        """JAFAR streams at the DRAM-side rate: about tCCD per 8 rows."""
        values = make_values()
        col, out = setup_column(machine, values)
        result = machine.driver.select_page(col.vaddr, N, 0, 10, out.vaddr)
        t = machine.timings
        floor_ps = (N * 8 // t.burst_bytes) * t.cycles_to_ps(t.tccd)
        assert result.duration_ps >= floor_ps
        assert result.duration_ps < 3 * floor_ps  # overheads bounded

    def test_writeback_traffic_matches_buffer_size(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        result = machine.driver.select_page(col.vaddr, N, 0, 10, out.vaddr)
        bits = machine.config.jafar_cost.output_buffer_bits
        assert result.writeback_bursts == -(-N // bits)

    def test_unvalidated_start_errors(self, machine):
        device = machine.devices[0]
        device.mmio_write(Reg.NUM_ROWS, 0)
        with pytest.raises(JafarProgrammingError):
            device.start(0)
        assert device.registers.status is Status.ERROR

    def test_modeled_throughput_is_one_word_per_cycle(self):
        assert modeled_words_per_cycle() == 1.0


class TestDriver:
    def test_unpinned_page_rejected(self, machine):
        values = make_values()
        col, out = setup_column(machine, values, pinned=False)
        with pytest.raises(PinningError, match="mlock"):
            machine.driver.select_page(col.vaddr, N, 0, 10, out.vaddr)

    def test_multi_page_column(self, machine):
        values = make_values(4 * N)
        col = machine.alloc_array(values, dimm=0, pinned=True)
        out = machine.alloc_zeros(values.size // 8, dimm=0, pinned=True)
        result = machine.driver.select_column(col.vaddr, values.size,
                                              0, 250_000, out.vaddr)
        assert result.pages == 4
        expected = int(((values >= 0) & (values <= 250_000)).sum())
        assert result.matches == expected

    def test_driver_charges_cpu_time(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        before = machine.core.now_ps
        result = machine.driver.select_page(col.vaddr, N, 0, 10, out.vaddr)
        assert machine.core.now_ps > before
        # CPU-visible time covers device time plus software overheads.
        assert machine.core.now_ps - before > result.duration_ps

    def test_oversized_page_call_rejected(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        too_many = machine.config.page_bytes // 8 + 1
        with pytest.raises(JafarProgrammingError, match="per-page"):
            machine.driver.select_page(col.vaddr, too_many, 0, 10, out.vaddr)

    def test_ownership_blocks_host_during_run(self, machine):
        """While JAFAR owns the rank (MPR engaged), host accesses fault."""
        rank = machine.controller.rank_at(0)
        grant = machine.ownership.acquire(rank, 0, 10_000_000)
        with pytest.raises(DRAMOwnershipError):
            rank.access(0, 0, grant.ready_ps, False, agent=Agent.CPU)
        machine.ownership.release(grant, grant.ready_ps)
        rank.access(0, 0, grant.ready_ps, False, agent=Agent.CPU)

    def test_double_grant_rejected(self, machine):
        rank = machine.controller.rank_at(0)
        grant = machine.ownership.acquire(rank, 0, 1000)
        with pytest.raises(DRAMOwnershipError, match="already granted"):
            machine.ownership.acquire(rank, grant.ready_ps, 1000)


class TestAPI:
    def test_figure2_contract(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        errno, matches = select_jafar(machine.driver, col.vaddr, 0, 500_000,
                                      out.vaddr, N)
        assert errno == JAFAR_OK
        assert matches == int(((values >= 0) & (values <= 500_000)).sum())

    def test_einval_for_bad_arguments(self, machine):
        values = make_values()
        col, out = setup_column(machine, values)
        assert select_jafar(machine.driver, col.vaddr, 10, 5, out.vaddr, N)[0] \
            == JAFAR_EINVAL
        assert select_jafar(machine.driver, col.vaddr, 0, 10, out.vaddr, 0)[0] \
            == JAFAR_EINVAL

    def test_efault_for_unmapped_address(self, machine):
        values = make_values()
        _, out = setup_column(machine, values)
        errno, _ = select_jafar(machine.driver, 0xDEAD0000000, 0, 10,
                                out.vaddr, N)
        assert errno == JAFAR_EFAULT

    def test_einval_for_unpinned(self, machine):
        values = make_values()
        col, out = setup_column(machine, values, pinned=False)
        errno, _ = select_jafar(machine.driver, col.vaddr, 0, 10, out.vaddr, N)
        assert errno == JAFAR_EINVAL

    def test_strerror(self):
        assert strerror(JAFAR_OK) == "OK"
        assert strerror(JAFAR_EFAULT) == "EFAULT"
        assert "unknown" in strerror(999)
