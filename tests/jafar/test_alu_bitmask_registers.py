"""Tests for JAFAR's ALUs, output buffer, and control registers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JafarProgrammingError
from repro.jafar import (
    INT64_MAX,
    INT64_MIN,
    ComparatorPair,
    OutputBuffer,
    Predicate,
    Reg,
    RegisterFile,
    Status,
    pack_mask,
    positions_from_mask,
    predicate_to_range,
    unpack_mask,
)


class TestComparator:
    def test_inclusive_range(self):
        alu = ComparatorPair(10, 20)
        assert not alu.compare(9)
        assert alu.compare(10)
        assert alu.compare(20)
        assert not alu.compare(21)

    def test_block_matches_scalar(self, engine):
        alu = ComparatorPair(-5, 5)
        words = np.arange(-10, 11, dtype=np.int64)
        block = alu.compare_block(words)
        assert block.tolist() == [alu.compare(int(w)) for w in words]

    def test_rejects_float_data(self):
        with pytest.raises(JafarProgrammingError):
            ComparatorPair(0, 1).compare_block(np.array([1.0]))

    def test_rejects_out_of_range_bounds(self):
        with pytest.raises(JafarProgrammingError):
            ComparatorPair(INT64_MIN - 1, 0)


class TestPredicateLowering:
    @pytest.mark.parametrize("pred,value,expected", [
        (Predicate.EQ, 7, (7, 7)),
        (Predicate.LT, 7, (INT64_MIN, 6)),
        (Predicate.LE, 7, (INT64_MIN, 7)),
        (Predicate.GT, 7, (8, INT64_MAX)),
        (Predicate.GE, 7, (7, INT64_MAX)),
    ])
    def test_lowering(self, pred, value, expected):
        assert predicate_to_range(pred, value) == expected

    def test_between(self):
        assert predicate_to_range(Predicate.BETWEEN, 3, 9) == (3, 9)
        with pytest.raises(JafarProgrammingError):
            predicate_to_range(Predicate.BETWEEN, 3)

    def test_degenerate_extremes_rejected(self):
        with pytest.raises(JafarProgrammingError):
            predicate_to_range(Predicate.LT, INT64_MIN)
        with pytest.raises(JafarProgrammingError):
            predicate_to_range(Predicate.GT, INT64_MAX)

    @settings(max_examples=100, deadline=None)
    @given(st.sampled_from(list(Predicate)),
           st.integers(-10**6, 10**6), st.integers(-10**6, 10**6),
           st.integers(-10**6, 10**6))
    def test_lowered_range_semantically_equal(self, pred, value, high, word):
        if pred is Predicate.BETWEEN and high < value:
            return
        low, hi = predicate_to_range(pred, value,
                                     high if pred is Predicate.BETWEEN else None)
        got = low <= word <= hi
        expected = {
            Predicate.EQ: word == value,
            Predicate.LT: word < value,
            Predicate.GT: word > value,
            Predicate.LE: word <= value,
            Predicate.GE: word >= value,
            Predicate.BETWEEN: value <= word <= high,
        }[pred]
        assert got == expected


class TestBitmaskPacking:
    def test_bit_order_is_little_endian(self, engine):
        mask = np.zeros(8, dtype=bool)
        mask[0] = True
        mask[3] = True
        assert pack_mask(mask).tolist() == [0b0000_1001]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_pack_unpack_round_trip(self, engine, bits):
        mask = np.array(bits, dtype=bool)
        assert (unpack_mask(pack_mask(mask), mask.size) == mask).all()

    def test_positions_from_mask(self, engine):
        mask = np.array([True, False, False, True, True], dtype=bool)
        assert positions_from_mask(pack_mask(mask), 5).tolist() == [0, 3, 4]

    def test_unpack_validates_buffer_size(self):
        with pytest.raises(JafarProgrammingError):
            unpack_mask(np.zeros(1, dtype=np.uint8), 100)


class TestOutputBuffer:
    def test_emits_writeback_exactly_when_full(self):
        buf = OutputBuffer(16)
        for i in range(15):
            assert buf.push(i % 2 == 0) is None
        wb = buf.push(True)
        assert wb is not None
        assert wb.bit_offset == 0
        assert wb.nbytes == 2
        assert buf.pending_bits == 0

    def test_sequential_writebacks_advance_offset(self):
        buf = OutputBuffer(8)
        first = buf.push_block(np.ones(8, dtype=bool))[0]
        second = buf.push_block(np.zeros(8, dtype=bool))[0]
        assert first.bit_offset == 0
        assert second.bit_offset == 8
        assert first.data.tolist() == [0xFF]
        assert second.data.tolist() == [0x00]

    def test_flush_drains_partial(self):
        buf = OutputBuffer(16)
        buf.push(True)
        buf.push(False)
        buf.push(True)
        wb = buf.flush()
        assert wb is not None
        assert wb.data.tolist() == [0b101]
        assert buf.flush() is None

    def test_match_counting(self):
        buf = OutputBuffer(8)
        buf.push_block(np.array([True, True, False, True]))
        assert buf.total_matches == 3
        assert buf.results_seen == 4

    def test_invalid_capacity(self):
        with pytest.raises(JafarProgrammingError):
            OutputBuffer(12)  # not a byte multiple
        with pytest.raises(JafarProgrammingError):
            OutputBuffer(0)

    def test_buffer_reconstructs_full_mask(self):
        rng = np.random.default_rng(3)
        mask = rng.random(100) < 0.3
        buf = OutputBuffer(24)
        chunks = buf.push_block(mask)
        tail = buf.flush()
        if tail is not None:
            chunks.append(tail)
        rebuilt = np.zeros(100, dtype=bool)
        for chunk in chunks:
            bits = unpack_mask(chunk.data, min(24, 100 - chunk.bit_offset))
            rebuilt[chunk.bit_offset:chunk.bit_offset + bits.size] = bits
        assert (rebuilt == mask).all()


class TestRegisterFile:
    def test_write_read(self):
        regs = RegisterFile()
        regs.write(Reg.RANGE_LOW, -5)
        assert regs.read(Reg.RANGE_LOW) == -5

    def test_status_registers_read_only_from_host(self):
        regs = RegisterFile()
        with pytest.raises(JafarProgrammingError):
            regs.write(Reg.STATUS, 1)
        with pytest.raises(JafarProgrammingError):
            regs.write(Reg.NUM_MATCHES, 1)

    def test_device_side_status(self):
        regs = RegisterFile()
        regs.set_status(Status.RUNNING)
        assert regs.status is Status.RUNNING
        regs.set_matches(42)
        assert regs.read(Reg.NUM_MATCHES) == 42

    def test_validation_rules(self):
        regs = RegisterFile()
        regs.write(Reg.COL_ADDR, 64)
        regs.write(Reg.OUT_ADDR, 128)
        regs.write(Reg.NUM_ROWS, 0)
        with pytest.raises(JafarProgrammingError, match="NUM_ROWS"):
            regs.validate_programmed()
        regs.write(Reg.NUM_ROWS, 8)
        regs.write(Reg.RANGE_LOW, 10)
        regs.write(Reg.RANGE_HIGH, 5)
        with pytest.raises(JafarProgrammingError, match="RANGE_LOW"):
            regs.validate_programmed()
        regs.write(Reg.RANGE_HIGH, 20)
        regs.write(Reg.COL_ADDR, 3)
        with pytest.raises(JafarProgrammingError, match="aligned"):
            regs.validate_programmed()

    def test_negative_address_rejected(self):
        with pytest.raises(JafarProgrammingError):
            RegisterFile().write(Reg.COL_ADDR, -8)
