"""Tests for multi-DIMM JAFAR coordination over interleaved layouts (§2.2)."""

import numpy as np
import pytest

from repro.config import JafarCostModel
from repro.dram import DDR3_1600, DRAMGeometry, MemoryController
from repro.errors import JafarProgrammingError
from repro.jafar import JafarDevice, positions_from_mask, select_interleaved
from repro.mem import PhysicalMemory


def build_interleaved_system(interleave=64):
    """Two channels (one DIMM each) with channel interleaving at 64 B."""
    geometry = DRAMGeometry(channels=2, dimms_per_channel=1, ranks_per_dimm=1,
                            banks_per_rank=8, row_bytes=8192, rows_per_bank=64,
                            interleave_bytes=interleave)
    mc = MemoryController(DDR3_1600, geometry, refresh_enabled=False)
    memory = PhysicalMemory(geometry.total_bytes)
    devices = []
    for channel in mc.channels:
        for dimm in channel.dimms:
            devices.append(JafarDevice(DDR3_1600, mc.mapping, channel.index,
                                       dimm, memory, JafarCostModel()))
    return mc, memory, devices


def test_interleaved_select_produces_complete_bitset():
    mc, memory, devices = build_interleaved_system()
    rng = np.random.default_rng(9)
    n = 4096
    values = rng.integers(0, 1000, n, dtype=np.int64)
    col_addr = 0
    out_addr = 256 * 1024
    memory.write_words(col_addr, values)
    result = select_interleaved(devices, col_addr, n, 100, 400, out_addr, 0)
    expected = np.flatnonzero((values >= 100) & (values <= 400))
    assert result.matches == expected.size
    got = positions_from_mask(memory.read(out_addr, n // 8), n)
    assert (got == expected).all()


def test_each_device_reads_only_its_share():
    mc, memory, devices = build_interleaved_system()
    n = 4096
    memory.write_words(0, np.arange(n, dtype=np.int64))
    result = select_interleaved(devices, 0, n, 0, 10**9, 256 * 1024, 0)
    reads = [r.bursts_read for r in result.per_device]
    skips = [r.bursts_skipped for r in result.per_device]
    total_bursts = n * 8 // 64
    assert sum(reads) == total_bursts
    assert reads[0] == reads[1] == total_bursts // 2
    assert skips[0] == skips[1] == total_bursts // 2


def test_parallel_devices_finish_in_about_half_the_time():
    """Two units splitting the column finish in ~half one unit's time."""
    mc, memory, devices = build_interleaved_system()
    n = 8192
    memory.write_words(0, np.zeros(n, dtype=np.int64))
    both = select_interleaved(devices, 0, n, 0, 10, 512 * 1024, 0)

    geometry = DRAMGeometry(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                            banks_per_rank=8, row_bytes=8192, rows_per_bank=128)
    single_mc = MemoryController(DDR3_1600, geometry, refresh_enabled=False)
    single_mem = PhysicalMemory(geometry.total_bytes)
    single_mem.write_words(0, np.zeros(n, dtype=np.int64))
    device = JafarDevice(DDR3_1600, single_mc.mapping, 0,
                         single_mc.channels[0].dimms[0], single_mem,
                         JafarCostModel())
    solo = select_interleaved([device], 0, n, 0, 10, 512 * 1024, 0)
    assert both.duration_ps < solo.duration_ps * 0.7


def test_devices_owning_nothing_are_skipped():
    mc, memory, devices = build_interleaved_system(interleave=4096)
    n = 256  # 2 KiB - entirely within channel 0's first interleave chunk
    memory.write_words(0, np.arange(n, dtype=np.int64))
    result = select_interleaved(devices, 0, n, 0, 10**9, 512 * 1024, 0)
    assert len(result.per_device) == 1
    assert result.matches == n


def test_validation():
    mc, memory, devices = build_interleaved_system()
    with pytest.raises(JafarProgrammingError):
        select_interleaved([], 0, 10, 0, 1, 1024, 0)
    with pytest.raises(JafarProgrammingError):
        select_interleaved(devices, 0, 0, 0, 1, 1024, 0)
