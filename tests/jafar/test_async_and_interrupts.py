"""Tests for asynchronous invocation and interrupt-based completion."""

import numpy as np
import pytest

from repro.config import GEM5_PLATFORM
from repro.errors import JafarProgrammingError, PinningError
from repro.jafar import (
    COMPLETION_MODES,
    INTERRUPT_LATENCY_NS,
    JafarDriver,
    POLL_QUANTUM_NS,
    positions_from_mask,
)
from repro.system import Machine
from repro.units import ns

N = 1 << 13


def make_machine(completion="poll"):
    machine = Machine(GEM5_PLATFORM)
    machine.driver = JafarDriver(machine.vm, machine.devices, machine.core,
                                 machine.ownership, completion=completion)
    return machine


def setup(machine, seed=1):
    values = np.random.default_rng(seed).integers(0, 1_000_000, N,
                                                  dtype=np.int64)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(N // 8, dimm=0, pinned=True)
    return values, col, out


class TestCompletionModes:
    def test_modes_enumerated(self):
        assert COMPLETION_MODES == ("poll", "interrupt")

    def test_unknown_mode_rejected(self):
        machine = Machine(GEM5_PLATFORM)
        with pytest.raises(JafarProgrammingError, match="completion mode"):
            JafarDriver(machine.vm, machine.devices, machine.core,
                        machine.ownership, completion="semaphore")

    def test_latency_constants(self):
        poll = make_machine("poll").driver.completion_latency_ps()
        intr = make_machine("interrupt").driver.completion_latency_ps()
        assert poll == ns(POLL_QUANTUM_NS / 2)
        assert intr == ns(INTERRUPT_LATENCY_NS)
        assert intr > poll

    def test_interrupt_mode_same_result_slightly_slower(self):
        """Interrupts add detection latency per page but free the CPU —
        for a spin-waiting caller they are strictly slower."""
        results = {}
        for mode in COMPLETION_MODES:
            machine = make_machine(mode)
            values, col, out = setup(machine)
            result = machine.driver.select_column(col.vaddr, N, 0, 500_000,
                                                  out.vaddr)
            results[mode] = result
        assert results["poll"].matches == results["interrupt"].matches
        assert results["interrupt"].duration_ps > results["poll"].duration_ps


class TestAsyncInvocation:
    def test_overlapped_compute_is_free(self):
        """CPU work issued between start and wait overlaps the device run:
        total time is max(compute, device), not the sum."""
        machine = make_machine()
        values, col, out = setup(machine)

        async_machine = make_machine()
        v2, col2, out2 = setup(async_machine)

        # Synchronous: select, then compute.
        sync_start = machine.core.now_ps
        machine.driver.select_page(col.vaddr, N, 0, 500_000, out.vaddr)
        machine.core.compute_phase(50_000)  # 50K cycles of other work
        sync_total = machine.core.now_ps - sync_start

        # Asynchronous: start, compute while the device runs, wait.
        async_start = async_machine.core.now_ps
        pending = async_machine.driver.start_page(col2.vaddr, N, 0, 500_000,
                                                  out2.vaddr)
        async_machine.core.compute_phase(50_000)
        pending.wait()
        async_total = async_machine.core.now_ps - async_start

        assert async_total < sync_total

    def test_wait_returns_correct_result(self):
        machine = make_machine()
        values, col, out = setup(machine, seed=5)
        pending = machine.driver.start_page(col.vaddr, N, 100, 400_000,
                                            out.vaddr)
        result = pending.wait()
        expected = np.flatnonzero((values >= 100) & (values <= 400_000))
        assert result.matches == expected.size
        buf = machine.read_array(out, N // 8, dtype=np.uint8)
        assert (positions_from_mask(buf, N) == expected).all()

    def test_wait_is_idempotent(self):
        machine = make_machine()
        _, col, out = setup(machine)
        pending = machine.driver.start_page(col.vaddr, N, 0, 10, out.vaddr)
        first = pending.wait()
        t_after_first = machine.core.now_ps
        second = pending.wait()
        assert second is first
        assert machine.core.now_ps == t_after_first

    def test_done_polls_status(self):
        machine = make_machine()
        _, col, out = setup(machine)
        pending = machine.driver.start_page(col.vaddr, N, 0, 10, out.vaddr)
        # Immediately after start the CPU clock trails the device.
        finished_immediately = pending.done()
        machine.core.advance_ps(pending.device_done_ps + 1)
        assert pending.done()
        pending.wait()
        assert not finished_immediately or pending.device_done_ps <= 0

    def test_wait_releases_ownership(self):
        machine = make_machine()
        _, col, out = setup(machine)
        pending = machine.driver.start_page(col.vaddr, N, 0, 10, out.vaddr)
        rank = machine.controller.rank_at(machine.vm.translate(col.vaddr))
        assert rank.mode_registers.mpr_enabled  # owned mid-flight
        pending.wait()
        assert not rank.mode_registers.mpr_enabled

    def test_start_page_validates_like_select_page(self):
        machine = make_machine()
        values = np.arange(N, dtype=np.int64)
        col = machine.alloc_array(values, dimm=0)  # NOT pinned
        out = machine.alloc_zeros(N // 8, dimm=0, pinned=True)
        with pytest.raises(PinningError):
            machine.driver.start_page(col.vaddr, N, 0, 10, out.vaddr)
        with pytest.raises(JafarProgrammingError):
            machine.driver.start_page(col.vaddr, 0, 0, 10, out.vaddr)
