"""Seeded protocol fuzzing: random request streams vs the JEDEC validator.

Each case drives a seeded-random request stream — mixed reads/writes,
random addresses, FCFS and reordered-batch submission, both page policies —
through the memory controller with command tracing attached, round-trips
the recorded stream through ``dump_commands``/``load_commands``, and replays
it through the ``repro.analyze`` JEDEC validator.  The timing model must
never emit an illegal command sequence, whatever the traffic; a single
violation is a model bug.

Seeds are fixed, so failures reproduce exactly; bump ``SEEDS`` locally for
longer campaigns.
"""

import random

import pytest

from repro.analyze import replay_commands
from repro.analyze.cli import main as analyze_main
from repro.dram import (
    Agent,
    DRAMGeometry,
    MemoryController,
    MemRequest,
)
from repro.dram.timing import SPEED_GRADES, speed_grade
from repro.sim import attach_trace, dump_commands, load_commands

#: Small geometry: few rows per bank so random streams hit row conflicts,
#: bank conflicts, and rank switches constantly.
GEOMETRY = DRAMGeometry(ranks_per_dimm=2, banks_per_rank=8,
                        row_bytes=2048, rows_per_bank=64)

SEEDS = range(6)
GRADES = tuple(sorted(SPEED_GRADES))


def _random_stream(rng: random.Random, total_bytes: int, count: int,
                   gap_ps: int) -> list[MemRequest]:
    """A seeded stream of requests with non-decreasing arrival times."""
    reqs = []
    now_ps = 0
    for _ in range(count):
        addr = rng.randrange(total_bytes - 512)
        nbytes = rng.choice((8, 64, 96, 256))
        is_write = rng.random() < 0.3
        agent = Agent.JAFAR if rng.random() < 0.2 else Agent.CPU
        reqs.append(MemRequest(addr, nbytes, is_write, now_ps, agent))
        now_ps += rng.randrange(gap_ps)
    return reqs


def _fuzz_controller(seed: int, grade: str, page_policy: str,
                     batched: bool, count: int = 150):
    """Drive one fuzz case; returns the controller and its command trace."""
    rng = random.Random(seed)
    timings = speed_grade(grade)
    controller = MemoryController(timings, GEOMETRY, page_policy=page_policy)
    trace = attach_trace(controller)
    stream = _random_stream(rng, GEOMETRY.total_bytes, count, gap_ps=20_000)
    if batched:
        window = 8
        for i in range(0, len(stream), window):
            controller.submit_batch(stream[i:i + window])
    else:
        for req in stream:
            controller.submit(req)
    controller.finish()
    return controller, trace


class TestFuzzReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("page_policy", ("open", "closed"))
    def test_fcfs_stream_replays_clean(self, seed, page_policy):
        _, trace = _fuzz_controller(seed, "DDR3-1600K", page_policy,
                                    batched=False)
        assert len(trace.commands) > 0
        violations = replay_commands(trace.commands,
                                     speed_grade("DDR3-1600K"))
        assert violations == [], [v.format() for v in violations]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_frfcfs_batches_replay_clean(self, seed):
        _, trace = _fuzz_controller(seed, "DDR3-2133N", "open", batched=True)
        violations = replay_commands(trace.commands,
                                     speed_grade("DDR3-2133N"))
        assert violations == [], [v.format() for v in violations]

    @pytest.mark.parametrize("grade", GRADES)
    def test_every_speed_grade_replays_clean(self, grade):
        _, trace = _fuzz_controller(seed=99, grade=grade, page_policy="open",
                                    batched=False)
        violations = replay_commands(trace.commands, speed_grade(grade))
        assert violations == [], [v.format() for v in violations]

    def test_wrong_grade_replay_catches_violations(self):
        """Sanity: the validator is not vacuously clean — replaying a fast
        grade's trace against a slower grade's timings must fail."""
        _, trace = _fuzz_controller(seed=7, grade="DDR3-2133N",
                                    page_policy="open", batched=False)
        violations = replay_commands(trace.commands,
                                     speed_grade("DDR3-1066G"))
        assert violations


@pytest.mark.slow
class TestFuzzCampaign:
    """The long campaign: every (grade, policy, submission) combination under
    many seeds.  Excluded from tier 1; run with ``pytest -m slow``."""

    @pytest.mark.parametrize("seed", range(20))
    def test_long_mixed_campaign(self, seed):
        rng = random.Random(1000 + seed)
        grade = rng.choice(GRADES)
        page_policy = rng.choice(("open", "closed"))
        batched = rng.random() < 0.5
        _, trace = _fuzz_controller(seed, grade, page_policy, batched,
                                    count=500)
        violations = replay_commands(trace.commands, speed_grade(grade))
        assert violations == [], [v.format() for v in violations]


class TestFuzzRoundTripAndCLI:
    def test_dump_load_replay_round_trip(self, tmp_path):
        """The on-disk form must replay exactly like the in-memory stream."""
        _, trace = _fuzz_controller(seed=3, grade="DDR3-1600K",
                                    page_policy="open", batched=True)
        path = tmp_path / "fuzz.jsonl"
        written = dump_commands(trace, str(path))
        loaded = load_commands(str(path))
        assert written == len(loaded) == len(trace.commands)
        assert loaded == list(trace.commands)
        violations = replay_commands(loaded, speed_grade("DDR3-1600K"))
        assert violations == []

    def test_analyze_cli_replays_fuzz_trace(self, tmp_path, capsys):
        """End-to-end: ``python -m repro.analyze --replay TRACE.jsonl``."""
        _, trace = _fuzz_controller(seed=11, grade="DDR3-2133N",
                                    page_policy="open", batched=False)
        path = tmp_path / "fuzz_cli.jsonl"
        dump_commands(trace, str(path))
        exit_code = analyze_main(["--replay", str(path),
                                  "--grade", "DDR3-2133N"])
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out + captured.err
        assert "clean" in captured.out
