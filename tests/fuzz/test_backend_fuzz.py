"""Seeded cross-backend differential fuzzing.

Each case draws a random batch of sweep configurations — rows, selectivity,
kernel, speed grade — runs the full bench pipeline under every compute
backend (and, for the slow campaign, in both exact and fast-forward mode),
and demands the simulated payloads diff clean via
:func:`repro.bench.orchestrator.diff_reports`.  Any mismatch dumps both
reports to a JSON artifact so the divergence can be inspected offline, then
fails naming the artifact and the seed.

Seeds are fixed, so failures reproduce exactly; the ``slow``-marked campaign
widens the seed range and row sizes for nightly runs.
"""

import json
import random

import pytest

pytest.importorskip("numpy")

from repro.bench.configs import SweepConfig
from repro.bench.orchestrator import diff_reports, run_sweep
from repro.compute import available_backends
from repro.sim import fastforward as _ffm

KERNELS = ("branchy", "predicated")
GRADES = (None, "DDR3-1066G")


def _random_configs(seed: int, max_rows: int, count: int) -> list[SweepConfig]:
    rng = random.Random(seed)
    configs = []
    for i in range(count):
        rows = rng.choice((256, 512, 1024, 2048, max_rows))
        configs.append(SweepConfig(
            "fig3_point",
            rows=rows,
            selectivity=rng.choice((0.0, 0.01, 0.25, 0.5, 0.99, 1.0)),
            grade=rng.choice(GRADES),
            kernel=rng.choice(KERNELS),
            seed=rng.randrange(1 << 16),
        ))
    return configs


def _dump_artifact(tmp_path, seed, mode, reports, mismatched):
    artifact = tmp_path / f"backend_divergence_seed{seed}_{mode}.json"
    artifact.write_text(json.dumps({
        "seed": seed,
        "mode": mode,
        "mismatched_points": mismatched,
        "reports": reports,
    }, indent=2, sort_keys=True), encoding="utf-8")
    return artifact


def _run_case(seed: int, mode: str, max_rows: int, count: int, tmp_path):
    backends = available_backends()
    if len(backends) < 2:  # pragma: no cover - numpy importorskip'd above
        pytest.skip("fewer than two compute backends available")
    configs = _random_configs(seed, max_rows, count)
    reports = {}
    if mode == "exact":
        with _ffm.exact_mode():
            for backend in backends:
                reports[backend] = run_sweep(configs, serial=True,
                                             use_cache=False, backend=backend)
    else:
        for backend in backends:
            reports[backend] = run_sweep(configs, serial=True,
                                         use_cache=False, backend=backend)
    baseline = backends[0]
    for other in backends[1:]:
        mismatched = diff_reports(reports[baseline], reports[other])
        if mismatched:
            artifact = _dump_artifact(tmp_path, seed, mode, reports,
                                      mismatched)
            pytest.fail(
                f"backends {baseline!r} and {other!r} diverged on "
                f"{mismatched} (seed={seed}, mode={mode}); both reports "
                f"dumped to {artifact}")


@pytest.mark.parametrize("seed", range(4))
def test_cross_backend_fuzz(seed, tmp_path):
    """Tier-1 campaign: small rows, fast-forward mode."""
    _run_case(seed, "fast-forward", max_rows=4096, count=4, tmp_path=tmp_path)


def test_cross_backend_fuzz_exact_mode(tmp_path):
    """One exact-mode case in tier 1: the fallback path must agree too."""
    _run_case(seed=99, mode="exact", max_rows=1024, count=3,
              tmp_path=tmp_path)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(10, 22))
@pytest.mark.parametrize("mode", ["fast-forward", "exact"])
def test_cross_backend_fuzz_campaign(seed, mode, tmp_path):
    """Nightly campaign: wider seeds, larger rows, both modes."""
    _run_case(seed, mode, max_rows=16384, count=6, tmp_path=tmp_path)
