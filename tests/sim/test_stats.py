"""Tests for counters, histograms, and busy-interval tracking."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import BusyTracker, Counter, Histogram


class TestCounter:
    def test_accumulates(self):
        counter = Counter("reads")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(10)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_moments(self):
        hist = Histogram("lat")
        for value in (1, 2, 3):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1
        assert hist.max == 3
        assert hist.stddev == pytest.approx(0.8165, abs=1e-3)

    def test_power_of_two_buckets(self):
        hist = Histogram("lat")
        hist.record(0)     # bucket 0
        hist.record(1)     # bucket 1
        hist.record(3)     # bucket 2
        hist.record(1000)  # bucket 10
        assert hist.buckets == {0: 1, 1: 1, 2: 1, 10: 1}

    def test_sums_stay_integral(self):
        hist = Histogram("lat")
        # Large picosecond-scale samples whose float accumulation would
        # round: the integer sums must stay exact.
        big = (1 << 53) + 1
        hist.record(big)
        hist.record(1)
        assert hist.total == big + 1
        assert isinstance(hist.total, int)
        assert isinstance(hist.total_sq, int)
        assert hist.mean == pytest.approx((big + 1) / 2)

    def test_accepts_integral_floats_only(self):
        hist = Histogram("lat")
        hist.record(2.0)  # integral float is coerced
        assert hist.buckets == {2: 1}
        with pytest.raises(SimulationError):
            hist.record(0.5)

    def test_rejects_negative_samples(self):
        with pytest.raises(SimulationError):
            Histogram("x").record(-1)

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0

    def test_snapshot_schema(self):
        hist = Histogram("lat")
        hist.record(4)
        snap = hist.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["total"] == 4
        assert snap["buckets"] == {"3": 1}


class TestBusyTracker:
    def test_disjoint_intervals_accumulate_and_gap_recorded(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(0, 100)
        tracker.mark_busy(300, 400)
        tracker.finish()
        assert tracker.busy_ps == 200
        assert tracker.intervals == 2
        gaps = tracker.idle_gaps_ps()
        assert gaps.count == 1
        assert gaps.mean == 200

    def test_overlapping_intervals_coalesce(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(0, 100)
        tracker.mark_busy(50, 150)
        tracker.mark_busy(150, 200)  # abutting also coalesces
        tracker.finish()
        assert tracker.busy_ps == 200
        assert tracker.intervals == 1
        assert tracker.idle_gaps_ps().count == 0

    def test_zero_length_interval_ignored(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(10, 10)
        tracker.finish()
        assert tracker.busy_ps == 0

    def test_out_of_order_starts_raise(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(100, 200)
        with pytest.raises(SimulationError):
            tracker.mark_busy(50, 60)

    def test_backwards_interval_raises(self):
        with pytest.raises(SimulationError):
            BusyTracker("rq").mark_busy(100, 50)

    def test_span_and_utilisation(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(100, 200)
        tracker.mark_busy(400, 500)
        tracker.finish()
        assert tracker.span_ps() == 400
        assert tracker.utilisation(1000) == pytest.approx(0.2)

    def test_utilisation_includes_open_interval(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(0, 500)
        assert tracker.utilisation(1000) == pytest.approx(0.5)

    def test_utilisation_rejects_empty_window(self):
        with pytest.raises(SimulationError):
            BusyTracker("rq").utilisation(0)

    def test_snapshot_schema(self):
        tracker = BusyTracker("rq")
        tracker.mark_busy(0, 100)
        tracker.finish()
        snap = tracker.snapshot()
        assert snap["type"] == "busy_tracker"
        assert snap["busy_ps"] == 100
        assert snap["intervals"] == 1
        assert snap["idle_gaps"]["type"] == "histogram"
