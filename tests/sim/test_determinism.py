"""Determinism regression tests for the event engine.

The whole reproduction depends on two engine guarantees: simultaneous
events fire in FIFO scheduling order (the ``(time_ps, seq)`` total order),
and a cancelled event's callback never runs.  These tests pin both down so
a refactor of the heap/queue internals cannot silently break replayability.
"""

from repro.sim import Simulator


def _run_trial(n=200, t_ps=1_000):
    """Schedule n same-picosecond events and return their firing order."""
    sim = Simulator()
    order = []
    for i in range(n):
        sim.schedule_at(t_ps, lambda i=i: order.append(i))
    sim.run()
    return order


def test_same_picosecond_events_fire_in_fifo_order():
    assert _run_trial() == list(range(200))


def test_firing_order_is_reproducible_across_runs():
    assert _run_trial() == _run_trial()


def test_interleaved_times_are_totally_ordered():
    sim = Simulator()
    order = []
    # Schedule out of time order; ties broken by scheduling order.
    for tag, t in [("a", 50), ("b", 10), ("c", 50), ("d", 10), ("e", 30)]:
        sim.schedule_at(t, lambda tag=tag: order.append(tag))
    sim.run()
    assert order == ["b", "d", "e", "a", "c"]


def test_cancelled_event_callback_never_runs():
    sim = Simulator()
    fired = []
    ev = sim.schedule_at(100, lambda: fired.append("cancelled"))
    sim.schedule_at(100, lambda: fired.append("kept"))
    ev.cancel()
    sim.run()
    assert fired == ["kept"]
    assert sim.pending == 0


def test_cancel_from_an_earlier_event_at_the_same_time():
    sim = Simulator()
    fired = []
    later = sim.schedule_at(100, lambda: fired.append("later"))
    # Scheduled after `later` but fires first? No — FIFO puts it second,
    # so cancel it from a same-time event scheduled *before* it exists.
    first = sim.schedule_at(100, lambda: later.cancel() or fired.append("first"))
    # FIFO: `later` (seq 0) fires before `first` (seq 1); cancelling an
    # already-fired event must be a harmless no-op.
    sim.run()
    assert fired == ["later", "first"]

    # Now the real in-flight cancellation: event A cancels event B where
    # B has a later seq at the same picosecond.
    sim2 = Simulator()
    fired2 = []
    victim_box = {}
    sim2.schedule_at(200, lambda: victim_box["v"].cancel())
    victim_box["v"] = sim2.schedule_at(200, lambda: fired2.append("victim"))
    sim2.run()
    assert fired2 == []
    assert first.cancelled is False


def test_reschedule_chain_is_deterministic():
    def chain(sim, log, hops):
        def hop(k):
            log.append((sim.now, k))
            if k < hops:
                sim.schedule_after(10, lambda: hop(k + 1))
        sim.schedule_at(0, lambda: hop(0))
        sim.run()
        return log

    a = chain(Simulator(), [], 50)
    b = chain(Simulator(), [], 50)
    assert a == b
    assert a[-1] == (500, 50)
