"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(30, lambda: fired.append("c"))
    sim.schedule_at(10, lambda: fired.append("a"))
    sim.schedule_at(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.schedule_at(5, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_schedule_after_is_relative():
    sim = Simulator()
    times = []
    sim.schedule_at(100, lambda: sim.schedule_after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule_at(10, lambda: fired.append("x"))
    event.cancel()
    sim.schedule_at(20, lambda: fired.append("y"))
    sim.run()
    assert fired == ["y"]


def test_run_until_horizon_stops_and_preserves_future_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(10, lambda: fired.append(10))
    sim.schedule_at(100, lambda: fired.append(100))
    count = sim.run(until_ps=50)
    assert count == 1
    assert fired == [10]
    assert sim.now == 50
    sim.run()
    assert fired == [10, 100]


def test_run_guards_against_runaway_loops():
    sim = Simulator()

    def reschedule():
        sim.schedule_after(1, reschedule)

    sim.schedule_at(0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_advance_to_moves_time_forward_only():
    sim = Simulator()
    sim.advance_to(500)
    assert sim.now == 500
    with pytest.raises(SimulationError):
        sim.advance_to(400)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_pending_counts_only_live_events():
    sim = Simulator()
    event = sim.schedule_at(10, lambda: None)
    sim.schedule_at(20, lambda: None)
    assert sim.pending == 2
    event.cancel()
    assert sim.pending == 1


def _live_scan(sim):
    """The O(n) definition the live counter must stay equivalent to."""
    return sum(1 for e in sim._queue if not e.cancelled)


def test_pending_counter_matches_queue_scan_through_mixed_workload():
    sim = Simulator()
    events = [sim.schedule_at(10 * i, lambda: None) for i in range(20)]
    assert sim.pending == _live_scan(sim) == 20
    for event in events[::3]:
        event.cancel()
    assert sim.pending == _live_scan(sim)
    sim.run(until_ps=95)
    assert sim.pending == _live_scan(sim)
    sim.run()
    assert sim.pending == _live_scan(sim) == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule_at(10, lambda: None)
    sim.schedule_at(20, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    sim = Simulator()
    event = sim.schedule_at(10, lambda: None)
    later = sim.schedule_at(20, lambda: None)
    assert sim.step() is True          # fires `event`
    event.cancel()                     # stale cancel of a fired event
    assert sim.pending == 1
    later.cancel()
    assert sim.pending == 0


def test_pending_drops_as_events_fire_inside_run():
    sim = Simulator()
    observed = []
    sim.schedule_at(10, lambda: observed.append(sim.pending))
    sim.schedule_at(20, lambda: observed.append(sim.pending))
    sim.run()
    # Each callback runs after its own event left the pending count.
    assert observed == [1, 0]
