"""``dump_commands``/``load_commands`` edge cases.

The happy path is covered by the protocol and fuzz suites; this file pins
the on-disk format's failure modes: empty traces, blank lines, truncated or
garbage records (which must fail loudly with ``path:lineno`` context, never
silently drop commands).
"""

import pytest

from repro.errors import SimulationError
from repro.sim import CommandTrace, dump_commands, load_commands
from repro.sim.trace import CommandRecord


def _small_trace() -> CommandTrace:
    trace = CommandTrace()
    trace.record_command(1000, "ACT", "cpu", 0, 2, 17)
    trace.record_command(15_000, "RD", "cpu", 0, 2, 17)
    trace.record_command(30_000, "PRE", "controller", 0, 2)
    trace.record_command(200_000, "REF", "refresh", 1, None)
    return trace


class TestRoundTrip:
    def test_round_trip_preserves_every_field(self, tmp_path):
        trace = _small_trace()
        path = tmp_path / "trace.jsonl"
        assert dump_commands(trace, str(path)) == 4
        loaded = load_commands(str(path))
        assert loaded == list(trace.commands)
        assert all(isinstance(c, CommandRecord) for c in loaded)

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert dump_commands(CommandTrace(), str(path)) == 0
        assert path.exists()
        assert load_commands(str(path)) == []

    def test_blank_lines_are_skipped(self, tmp_path):
        trace = _small_trace()
        path = tmp_path / "padded.jsonl"
        dump_commands(trace, str(path))
        padded = "\n" + path.read_text().replace("\n", "\n\n") + "\n\n"
        path.write_text(padded, encoding="utf-8")
        assert load_commands(str(path)) == list(trace.commands)


class TestMalformedInput:
    def test_truncated_line_raises_with_location(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        dump_commands(_small_trace(), str(path))
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # cut a record in half
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(SimulationError, match=r"truncated\.jsonl:3"):
            load_commands(str(path))

    def test_garbage_line_raises_with_location(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"time_ps": 1, "kind": "ACT"}\n', encoding="utf-8")
        with pytest.raises(SimulationError, match=r"garbage\.jsonl:1"):
            load_commands(str(path))

    def test_non_json_line_raises(self, tmp_path):
        path = tmp_path / "text.jsonl"
        dump_commands(_small_trace(), str(path))
        with path.open("a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
        with pytest.raises(SimulationError, match=r"text\.jsonl:5"):
            load_commands(str(path))

    def test_unknown_field_raises(self, tmp_path):
        path = tmp_path / "extra.jsonl"
        path.write_text(
            '{"time_ps": 1, "kind": "ACT", "agent": "cpu", "rank": 0, '
            '"bank": 0, "row": 1, "bogus_field": 9}\n', encoding="utf-8")
        with pytest.raises(SimulationError, match=r"extra\.jsonl:1"):
            load_commands(str(path))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_commands(str(tmp_path / "does_not_exist.jsonl"))
