"""The engine's total order and the seeded schedule perturber.

The contract under test (DESIGN.md §9): events fire in
``(time_ps, priority, tiebreak, seq)`` order; with perturbation off every
tiebreak is 0 (FIFO among exact ties); with a seed installed, same-priority
ties are permuted deterministically per seed while declared priority edges
are preserved; and heap *insertion* order can never leak into firing order.
"""

import heapq

import pytest

from repro.sim.engine import Event, Simulator
from repro.sim.perturb import PERTURB, is_perturbed, perturbed, set_seed

N_EVENTS = 12
TICK_PS = 500


@pytest.fixture(autouse=True)
def _fifo_default():
    """Every test starts and ends unperturbed."""
    set_seed(None)
    yield
    set_seed(None)


def _firing_order(n=N_EVENTS, priority=0):
    sim = Simulator()
    fired = []
    for k in range(n):
        sim.schedule_at(TICK_PS, lambda k=k: fired.append(k),
                        priority=priority)
    sim.run()
    return fired


class TestFifoDefault:
    def test_unperturbed_ties_fire_in_scheduling_order(self):
        assert _firing_order() == list(range(N_EVENTS))

    def test_unperturbed_tiebreak_is_zero(self):
        sim = Simulator()
        events = [sim.schedule_at(TICK_PS, lambda: None) for _ in range(4)]
        assert [e.tiebreak for e in events] == [0, 0, 0, 0]

    def test_is_perturbed_reflects_seed(self):
        assert not is_perturbed()
        set_seed(3)
        assert is_perturbed()


class TestSeededPermutation:
    def test_seed_actually_permutes_ties(self):
        # With a dozen ties, at least one of the first few seeds must
        # produce a non-FIFO order (all-FIFO would mean the perturber is
        # dead); the hash is fixed, so this is deterministic, not flaky.
        orders = set()
        for seed in range(1, 6):
            with perturbed(seed):
                orders.add(tuple(_firing_order()))
        assert any(order != tuple(range(N_EVENTS)) for order in orders)

    def test_same_seed_is_exactly_reproducible(self):
        with perturbed(7):
            first = _firing_order()
        with perturbed(7):
            second = _firing_order()
        assert first == second

    def test_permutation_counter_counts_perturbed_events(self):
        before = PERTURB.permutations_applied
        with perturbed(1):
            _firing_order(n=5)
        assert PERTURB.permutations_applied == before + 5

    def test_unperturbed_events_do_not_count(self):
        before = PERTURB.permutations_applied
        _firing_order(n=5)
        assert PERTURB.permutations_applied == before

    def test_context_manager_restores_previous_seed(self):
        set_seed(9)
        with perturbed(2):
            assert PERTURB.seed == 2
        assert PERTURB.seed == 9


class TestPriorityEdgesSurvivePerturbation:
    def test_declared_edges_are_never_inverted(self):
        for seed in range(1, 8):
            sim = Simulator()
            fired = []
            with perturbed(seed):
                for k in range(6):
                    sim.schedule_at(TICK_PS, lambda k=k: fired.append(("lo", k)))
                sim.schedule_at(TICK_PS, lambda: fired.append(("hi", 0)),
                                priority=1)
            sim.run()
            assert fired[-1] == ("hi", 0), f"priority edge inverted, seed {seed}"

    def test_time_order_is_never_inverted(self):
        for seed in range(1, 8):
            sim = Simulator()
            fired = []
            with perturbed(seed):
                sim.schedule_at(2 * TICK_PS, lambda: fired.append("late"))
                sim.schedule_at(TICK_PS, lambda: fired.append("early"))
            sim.run()
            assert fired == ["early", "late"]


class TestInsertionOrderCannotLeak:
    def test_heap_push_order_is_irrelevant_to_firing_order(self):
        # Regression for the documented total order: the same event set
        # pushed into the heap in three different arrangements must fire
        # identically, because (time_ps, priority, tiebreak, seq) is total —
        # no two events share a key, so heap internals decide nothing.
        def firing_seqs(arrange):
            sim = Simulator()
            fired = []
            events = [Event(TICK_PS, k % 2, 0, k,
                            lambda k=k: fired.append(k), _owner=sim)
                      for k in range(8)]
            for ev in arrange(events):
                heapq.heappush(sim._queue, ev)
                sim._pending += 1
            sim._seq = len(events)
            sim.run()
            return fired

        baseline = firing_seqs(lambda evs: evs)
        assert firing_seqs(lambda evs: list(reversed(evs))) == baseline
        assert firing_seqs(lambda evs: evs[4:] + evs[:4]) == baseline
