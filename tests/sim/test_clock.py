"""Tests for clock domains and bus-transfer arithmetic."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import ClockDomain, bandwidth_bytes_per_s, transfer_time_ps
from repro.units import ghz, mhz


def test_period_of_1ghz_clock_is_1000ps():
    clk = ClockDomain(ghz(1))
    assert clk.period_ps == 1000


def test_cycles_to_ps_round_trip():
    clk = ClockDomain(mhz(800))
    assert clk.period_ps == 1250
    assert clk.cycles_to_ps(4) == 5000
    assert clk.ps_to_cycles(5000) == 4
    assert clk.ps_to_cycles(5001) == 4  # mid-cycle floors


def test_ps_to_cycles_exact_is_fractional():
    clk = ClockDomain(ghz(1))
    assert clk.ps_to_cycles_exact(1500) == pytest.approx(1.5)


def test_next_edge_alignment():
    clk = ClockDomain(ghz(1))
    assert clk.next_edge(0) == 0
    assert clk.next_edge(1) == 1000
    assert clk.next_edge(1000) == 1000
    assert clk.next_edge(1001) == 2000


def test_derived_clock_doubles_frequency():
    bus = ClockDomain(mhz(1066), "bus")
    jafar = bus.derived(2, "jafar")
    assert jafar.freq_hz == bus.freq_hz * 2
    assert jafar.period_ps == pytest.approx(bus.period_ps / 2, abs=1)


def test_invalid_frequency_raises():
    with pytest.raises(ClockError):
        ClockDomain(0)
    with pytest.raises(ClockError):
        ClockDomain(-5)


def test_negative_duration_raises():
    clk = ClockDomain(ghz(1))
    with pytest.raises(ClockError):
        clk.ps_to_cycles(-1)


def test_ddr_bandwidth_is_16x_bus_freq():
    # 64-bit channel, dual-pumped: 16 bytes per bus cycle.
    bus = ClockDomain(ghz(1))
    assert bandwidth_bytes_per_s(bus, bytes_per_edge=8, pumped=2) == 16e9


def test_transfer_time_of_one_burst():
    # 64 bytes over a dual-pumped 64-bit bus = 8 edges = 4 cycles.
    bus = ClockDomain(ghz(1))
    assert transfer_time_ps(bus, 64) == 4000


def test_transfer_time_rounds_up_partial_edges():
    bus = ClockDomain(ghz(1))
    assert transfer_time_ps(bus, 1) == 500  # one edge
    assert transfer_time_ps(bus, 9) == 1000  # two edges


def test_transfer_time_rejects_negative_size():
    bus = ClockDomain(ghz(1))
    with pytest.raises(ClockError):
        transfer_time_ps(bus, -1)
