"""Tests for DRAM command tracing."""

import numpy as np
import pytest

from repro.config import GEM5_PLATFORM
from repro.dram import Agent, MemRequest
from repro.errors import SimulationError
from repro.sim import CommandTrace, attach_trace, detach_trace
from repro.system import Machine


def test_trace_records_controller_traffic():
    machine = Machine(GEM5_PLATFORM)
    trace = attach_trace(machine)
    machine.controller.stream(range(0, 64 * 16, 64), nbytes=64, start_ps=0)
    assert len(trace) == 16
    assert trace.counts_by_agent() == {"cpu": 16}
    # Sequential stream: all but the first burst hit the open row.
    assert trace.row_hit_rate() == pytest.approx(15 / 16)


def test_trace_sees_both_agents():
    machine = Machine(GEM5_PLATFORM)
    trace = attach_trace(machine)
    values = np.arange(4096, dtype=np.int64)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(512, dimm=0, pinned=True)
    machine.driver.select_column(col.vaddr, 4096, 0, 100, out.vaddr)
    machine.controller.submit(MemRequest(0, 64, False,
                                         machine.core.now_ps, Agent.CPU))
    counts = trace.counts_by_agent()
    assert counts["jafar"] > 0
    assert counts["cpu"] > 0
    assert trace.interleavings() >= 1


def test_agent_conflicts_only_on_shared_banks():
    trace = CommandTrace()
    trace.record(0, "cpu", 0, 0, 1, False, False)
    trace.record(1, "jafar", 0, 0, 2, False, False)   # same bank: conflict
    trace.record(2, "cpu", 0, 3, 1, False, False)     # different bank
    assert trace.interleavings() == 2
    assert trace.agent_conflicts() == 1


def test_window_filters_by_time():
    trace = CommandTrace()
    for t in (10, 20, 30, 40):
        trace.record(t, "cpu", 0, 0, 0, False, True)
    sub = trace.window(15, 35)
    assert len(sub) == 2
    with pytest.raises(SimulationError):
        trace.window(10, 5)


def test_summary_fields():
    trace = CommandTrace()
    trace.record(0, "cpu", 0, 0, 0, False, True)
    trace.record(1, "cpu", 0, 0, 0, True, True)
    summary = trace.summary()
    assert summary["bursts"] == 2
    assert summary["reads"] == 1
    assert summary["writes"] == 1
    assert summary["row_hit_rate"] == 1.0


def test_capacity_guard():
    trace = CommandTrace(capacity=2)
    trace.record(0, "cpu", 0, 0, 0, False, True)
    trace.record(1, "cpu", 0, 0, 0, False, True)
    with pytest.raises(SimulationError, match="capacity"):
        trace.record(2, "cpu", 0, 0, 0, False, True)


def test_detach_stops_recording():
    machine = Machine(GEM5_PLATFORM)
    trace = attach_trace(machine)
    machine.controller.submit(MemRequest(0, 64, False, 0))
    detach_trace(machine)
    machine.controller.submit(MemRequest(64, 64, False, 1000))
    assert len(trace) == 1


def test_row_hit_rate_per_agent():
    trace = CommandTrace()
    trace.record(0, "cpu", 0, 0, 0, False, True)
    trace.record(1, "jafar", 0, 0, 0, False, False)
    assert trace.row_hit_rate("cpu") == 1.0
    assert trace.row_hit_rate("jafar") == 0.0
    assert trace.row_hit_rate("nobody") == 0.0
