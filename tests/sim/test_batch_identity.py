"""Batch pipeline vs event-driven path: bit-identity at the edges.

The batched request pipeline (DESIGN.md §12) only runs when fast-forward is
on; ``exact_mode()`` forces every request down the per-event path.  These
tests run the same sweep configurations both ways and demand the simulated
payloads diff clean — the end-to-end form of the exactness invariant, aimed
squarely at the places batches must break and fall back:

* tREFI straddles — runs long enough that batch windows hit refresh
  deadlines mid-formation (every config beyond a few thousand rows crosses
  many 7.8 µs windows);
* buffer drains mid-batch — a minimal 512-bit JAFAR buffer forces a
  write-back drain after every interior burst;
* degenerate selectivities 0.0 / 1.0 — all-skip and all-hit streams, the
  two extremes of batch run length.

Tier 1 keeps rows small; the ``slow`` campaign re-proves identity at the
paper-scale 262144-row point and completes a 4M-row fig3 point, the
ISSUE's routine-paper-sweep target.
"""

import pytest

from repro.bench.configs import SweepConfig
from repro.bench.orchestrator import diff_reports, run_sweep
from repro.sim import fastforward as _ffm


def _identity_case(configs):
    """Run configs fast-forwarded and exact; fail on any simulated diff."""
    fast = run_sweep(configs, serial=True, use_cache=False, exact=False)
    exact = run_sweep(configs, serial=True, use_cache=False, exact=True)
    mismatched = diff_reports(fast, exact)
    assert not mismatched, (
        f"batched fast-forward path diverged from the event-driven path on "
        f"{mismatched}")
    return fast


class TestBatchVsEventDriven:
    def test_degenerate_selectivities(self):
        # All-skip and all-hit: the longest possible uniform batch runs.
        configs = [SweepConfig("fig3_point", rows=8192, selectivity=s)
                   for s in (0.0, 1.0)]
        report = _identity_case(configs)
        # The fast run must actually have fast-forwarded something,
        # or this proved nothing about the batch path.
        assert report["ff_skipped_events"] > 0

    def test_trefi_straddle(self):
        # 8192 rows cross dozens of 7.8 us refresh windows: every batch
        # formation eventually hits a tREFI deadline and must hand the
        # straddling request back to the event-driven path.
        configs = [SweepConfig("fig3_point", rows=8192, selectivity=0.5)]
        _identity_case(configs)

    def test_buffer_drain_mid_batch(self):
        # A minimal 512-bit buffer drains after every interior burst, so
        # write-back pressure interrupts batches as often as possible.
        configs = [SweepConfig("fig3_point", rows=2048, selectivity=0.5,
                               buffer_bits=512),
                   SweepConfig("fig3_point", rows=2048, selectivity=0.9,
                               buffer_bits=512)]
        _identity_case(configs)

    def test_mixed_grades_and_kernels(self):
        configs = [SweepConfig("fig3_point", rows=2048, selectivity=0.25,
                               grade="DDR3-1066G"),
                   SweepConfig("fig3_point", rows=2048, selectivity=0.75,
                               kernel="predicated"),
                   SweepConfig("scan_estimate", rows=2048, selectivity=0.5)]
        _identity_case(configs)


@pytest.mark.slow
class TestPaperScale:
    def test_identity_at_262144_rows(self):
        # The ISSUE's headline scale: batch-vs-event identity where the
        # wall-clock speedup is claimed.
        configs = [SweepConfig("fig3_point", rows=262144, selectivity=s)
                   for s in (0.0, 0.5, 1.0)]
        report = _identity_case(configs)
        assert report["ff_skipped_events"] > 0

    def test_4m_row_point_completes(self):
        # 4M rows as a routine benchmark: fast-forwarded only (the exact
        # run at this scale is a nightly-budget job, and identity is
        # already proven at 262144 rows above).
        _ffm.STATS.reset()
        report = run_sweep(
            [SweepConfig("fig3_point", rows=4194304, selectivity=0.5)],
            serial=True, use_cache=False)
        point = report["points"][0]
        result = point["result"]
        # At this scale the column spans geometry the device-side epoch
        # skipper refuses, so the batched lane pipeline is what makes the
        # point routine: it must have served the bulk of the traffic.
        assert _ffm.STATS.batched_requests > 100_000
        assert result["matches"] == pytest.approx(4194304 * 0.5, rel=0.01)
        assert result["jafar_ps"] > 0 and result["cpu_ps"] > 0
