"""Steady-state fast-forward: snapshot algebra, skipping, bit-identity.

The contract under test is absolute: any result observable from a simulation
— timings, stats counters, bitmasks, command traces — must be bit-identical
whether fast-forward ran or the event-driven path executed everything.
"""

import dataclasses

import numpy as np
import pytest

from repro.analyze.protocol import replay_commands
from repro.analysis.speedup import measure_point
from repro.config import GEM5_PLATFORM
from repro.errors import SimulationError
from repro.sim import fastforward as ffm
from repro.sim.engine import Simulator
from repro.sim.fastforward import (EpochSkipper, PeriodDetector, Pinned,
                                   StateGroup, apply_delta, exact_mode,
                                   snapshot_delta)
from repro.sim.trace import attach_trace
from repro.system import Machine


# -- snapshot algebra ----------------------------------------------------------


class TestSnapshotDelta:
    def test_int_and_float_slots_difference(self):
        assert snapshot_delta((10, 2.0), (25, 3.5)) == (15, 1.5)

    def test_equal_pinned_slots_become_none(self):
        delta = snapshot_delta((1, "rd", None, True, Pinned(7)),
                               (2, "rd", None, True, Pinned(7)))
        assert delta == (1, None, None, None, None)

    def test_changed_non_numeric_slot_refuses(self):
        assert snapshot_delta((1, "rd"), (2, "wr")) is None
        assert snapshot_delta((1, Pinned(7)), (2, Pinned(8))) is None
        assert snapshot_delta((1, True), (2, False)) is None

    def test_shape_or_type_mismatch_refuses(self):
        assert snapshot_delta((1, 2), (1, 2, 3)) is None
        assert snapshot_delta((1,), (1.0,)) is None


class TestApplyDelta:
    def test_extrapolates_ints_additively(self, engine):
        assert apply_delta((100, 7), (10, 0), 5) == (150, 7)

    def test_none_steps_carry_the_base_value(self, engine):
        assert apply_delta((100, "rd"), (10, None), 3) == (130, "rd")

    def test_integral_floats_extrapolate_exactly(self, engine):
        assert apply_delta((2.0,), (3.0,), 4) == (14.0,)

    def test_non_integral_float_refuses(self, engine):
        assert apply_delta((0.5,), (1.0,), 2) is None
        assert apply_delta((0.0,), (0.3,), 2) is None

    def test_float_beyond_exact_range_refuses(self, engine):
        assert apply_delta((float(2**52),), (float(2**52),), 4) is None

    def test_zero_float_step_is_always_safe(self, engine):
        assert apply_delta((0.5,), (0.0,), 1000) == (0.5,)


class TestPeriodDetector:
    def test_confirms_after_repeated_deltas(self):
        detector = PeriodDetector(confirm=2)
        assert detector.observe((0,)) is None
        assert detector.observe((10,)) is None     # first delta seen once
        assert detector.observe((20,)) == (10,)    # seen twice: confirmed

    def test_changed_delta_restarts_confirmation(self):
        detector = PeriodDetector(confirm=2)
        for snap in ((0,), (10,), (25,)):          # deltas 10 then 15
            assert detector.observe(snap) is None
        assert detector.observe((40,)) == (15,)

    def test_prime_reseats_after_a_jump(self):
        detector = PeriodDetector(confirm=2)
        for snap in ((0,), (10,), (20,)):
            detector.observe(snap)
        detector.prime((120,))                     # caller jumped 10 periods
        assert detector.observe((130,)) == (10,)   # cadence unbroken

    def test_rejects_confirm_below_one(self):
        with pytest.raises(SimulationError):
            PeriodDetector(confirm=0)


class TestStateGroup:
    def test_roundtrip_routes_slots_back(self):
        a = {"x": 1, "y": 2}
        b = {"z": 3}
        group = StateGroup([
            (lambda: (a["x"], a["y"]), lambda s: a.update(x=s[0], y=s[1])),
            (lambda: (b["z"],), lambda s: b.update(z=s[0])),
        ])
        assert group.snapshot() == (1, 2, 3)
        group.restore((10, 20, 30))
        assert a == {"x": 10, "y": 20} and b == {"z": 30}

    def test_restore_before_snapshot_raises(self):
        group = StateGroup([(lambda: (1,), lambda s: None)])
        with pytest.raises(SimulationError):
            group.restore((1,))


class TestEpochSkipper:
    def test_skip_extrapolates_and_reprimes(self):
        state = {"t": 0}
        skipper = EpochSkipper([(lambda: (state["t"],),
                                 lambda s: state.update(t=s[0]))])
        delta = None
        for t in (0, 100, 200):
            state["t"] = t
            delta = skipper.observe()
        assert delta == (100,)
        assert skipper.skip(delta, 7, 100)
        assert state["t"] == 900
        # The cadence is unbroken after the jump: one live period re-confirms.
        state["t"] = 1000
        assert skipper.observe() == (100,)

    def test_refuses_nonpositive_periods_and_unseen_state(self):
        skipper = EpochSkipper([(lambda: (0,), lambda s: None)])
        assert not skipper.skip((1,), 0, 1)
        assert not skipper.skip((1,), -3, 1)


# -- engine primitive ----------------------------------------------------------


class TestFastForwardTo:
    def test_jumps_over_a_drained_window(self):
        sim = Simulator()
        sim.fast_forward_to(12345)
        assert sim.now == 12345

    def test_refuses_backwards(self):
        sim = Simulator()
        sim.advance_to(100)
        with pytest.raises(SimulationError):
            sim.fast_forward_to(50)

    def test_refuses_to_jump_over_a_live_event(self):
        sim = Simulator()
        sim.schedule_at(500, lambda: None)
        with pytest.raises(SimulationError):
            sim.fast_forward_to(1000)
        sim.fast_forward_to(499)  # up to (not past) the event is fine
        assert sim.now == 499

    def test_cancelled_events_do_not_block(self):
        sim = Simulator()
        sim.schedule_at(500, lambda: None).cancel()
        sim.fast_forward_to(1000)
        assert sim.now == 1000


# -- control flags -------------------------------------------------------------


# Under `pytest --simsan` (or REPRO_EXACT=1) fast-forward is forced off for
# the whole run, so tests that assert the fast paths actually engage — or
# that manipulate the force stack — must stand down.
needs_fastforward = pytest.mark.skipif(
    not ffm.is_enabled(),
    reason="fast-forward disabled (REPRO_EXACT or SimSan forces exact mode)")


@needs_fastforward
class TestControl:
    def test_exact_mode_nests(self):
        assert ffm.FF.on
        with exact_mode():
            assert not ffm.FF.on
            with exact_mode():
                assert not ffm.FF.on
            assert not ffm.FF.on
        assert ffm.FF.on

    def test_set_enabled_round_trip(self):
        ffm.set_enabled(False)
        try:
            assert not ffm.is_enabled()
            with exact_mode():
                pass  # a scoped force under a global disable is fine
            assert not ffm.is_enabled()
        finally:
            ffm.set_enabled(True)
        assert ffm.is_enabled()

    def test_unbalanced_allow_raises(self):
        with pytest.raises(SimulationError):
            ffm.FF.allow()


# -- bit-identity --------------------------------------------------------------


N_ROWS = 32768  # 32 DRAM rows: several refresh deadlines land mid-stream


def _run_select(machine, rows=N_ROWS):
    values = np.arange(rows, dtype=np.int64)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(max(rows // 8, 1), dimm=0, pinned=True)
    result = machine.driver.select_column(col.vaddr, rows, rows // 4,
                                          3 * rows // 4, out.vaddr)
    bitmask = bytes(machine.read_array(out, max(rows // 8, 1)))
    return result, bitmask


@needs_fastforward
class TestBitIdentity:
    def test_device_select_matches_exact(self, engine):
        ffm.STATS.reset()
        fast, fast_mask = _run_select(Machine(GEM5_PLATFORM))
        assert ffm.STATS.skipped_events > 0
        with exact_mode():
            exact, exact_mask = _run_select(Machine(GEM5_PLATFORM))
        assert fast == exact
        assert fast_mask == exact_mask

    def test_measure_point_matches_exact(self, engine):
        """End to end: device run + CPU baseline + derived figures."""
        fast = measure_point(0.3, 16384, config=GEM5_PLATFORM, seed=11,
                             kernel="branchy")
        with exact_mode():
            exact = measure_point(0.3, 16384, config=GEM5_PLATFORM, seed=11,
                                  kernel="branchy")
        assert fast == exact

    def test_cpu_stream_kernel_matches_exact(self):
        fast = measure_point(0.7, 16384, config=GEM5_PLATFORM, seed=5,
                             kernel="predicated")
        with exact_mode():
            exact = measure_point(0.7, 16384, config=GEM5_PLATFORM, seed=5,
                                  kernel="predicated")
        for field in dataclasses.fields(fast):
            assert getattr(fast, field.name) == getattr(exact, field.name)


@needs_fastforward
class TestRefreshDeadlineMidPeriod:
    """tREFI lands mid-cadence: fast-forward must stop short of the deadline,
    execute the refresh event-driven, and still match command for command."""

    def test_ff_exits_early_and_replays_identically(self):
        machine_ff = Machine(GEM5_PLATFORM)
        trace_ff = attach_trace(machine_ff)
        ffm.STATS.reset()
        fast, fast_mask = _run_select(machine_ff)
        assert ffm.STATS.skips > 0, "fast-forward never engaged"

        # Refreshes were serviced live by the event-driven path: the skip
        # horizon stopped short of every tREFI deadline instead of jumping
        # the refresh (which would have corrupted bank state silently).
        refreshes = sum(r.refresh.refreshes_issued
                        for ch in machine_ff.controller.channels
                        for r in ch.all_ranks())
        assert refreshes > 0, "no tREFI deadline landed mid-stream"
        assert any(c.kind == "REF" for c in trace_ff.commands)

        machine_ex = Machine(GEM5_PLATFORM)
        trace_ex = attach_trace(machine_ex)
        with exact_mode():
            exact, exact_mask = _run_select(machine_ex)

        assert fast == exact
        assert fast_mask == exact_mask
        # Command-for-command: the synthesised command stream of the skipped
        # periods is indistinguishable from the event-driven one.
        assert trace_ff.commands == trace_ex.commands
        assert trace_ff.records == trace_ex.records

        # And the stream is protocol-legal: replay it through the DDR3
        # command checker used by the JEDEC sanitizer.
        violations = replay_commands(trace_ff.commands, machine_ff.timings)
        assert violations == []
