"""Declarative plan-tree query variants vs NumPy and the physical plans."""

import numpy as np
import pytest

from repro.columnstore import ExecutionContext, StorageManager, encode_date
from repro.config import XEON_PLATFORM
from repro.system import Machine
from repro.tpch import generate
from repro.tpch.queries import declarative, q6
from repro.tpch.queries.q1 import CUTOFF
from repro.tpch.queries.q3 import PIVOT, SEGMENT


@pytest.fixture(scope="module")
def data():
    return generate(scale=0.002, seed=13)


def make_ctx(data, use_ndp=False):
    machine = Machine(XEON_PLATFORM)
    storage = StorageManager(machine, default_dimm=None)
    for table in data.tables():
        storage.load_table(table)
    return ExecutionContext(machine, storage, use_ndp=use_ndp)


@pytest.mark.parametrize("use_ndp", [False, True])
def test_q6_plan_matches_numpy(data, use_ndp):
    ctx = make_ctx(data, use_ndp)
    rs = declarative.run_plan(ctx, data.catalog(),
                              declarative.q6_plan(data.catalog()))
    li = data.lineitem
    mask = ((li["l_shipdate"].values >= encode_date(q6.YEAR_START))
            & (li["l_shipdate"].values <= encode_date(q6.YEAR_END))
            & (li["l_discount"].values >= q6.DISCOUNT_LOW)
            & (li["l_discount"].values <= q6.DISCOUNT_HIGH)
            & (li["l_quantity"].values < q6.QUANTITY_LIMIT))
    assert rs.column("rows_selected")[0] == int(mask.sum())
    assert rs.column("sum_price")[0] == int(
        li["l_extendedprice"].values[mask].sum())


def test_q6_plan_row_count_matches_physical_pipeline(data):
    ctx = make_ctx(data)
    rs = declarative.run_plan(ctx, data.catalog(),
                              declarative.q6_plan(data.catalog()))
    physical = q6.run(make_ctx(data), data.catalog())
    assert rs.column("rows_selected")[0] == physical.rows[0]["rows_selected"]


def test_q1_plan_groups_match_numpy(data):
    ctx = make_ctx(data)
    rs = declarative.run_plan(ctx, data.catalog(),
                              declarative.q1_plan(data.catalog()))
    li = data.lineitem
    mask = li["l_shipdate"].values <= encode_date(CUTOFF)
    rf = li["l_returnflag"].values[mask]
    ls = li["l_linestatus"].values[mask]
    qty = li["l_quantity"].values[mask]
    for i in range(rs.num_rows):
        sel = ((rf == rs.column("l_returnflag")[i])
               & (ls == rs.column("l_linestatus")[i]))
        assert rs.column("count_order")[i] == int(sel.sum())
        assert rs.column("sum_qty")[i] == int(qty[sel].sum())
    # Ordered by the group keys.
    keys = list(zip(rs.column("l_returnflag").tolist(),
                    rs.column("l_linestatus").tolist()))
    assert keys == sorted(keys)


def test_q3_join_plan_matches_numpy(data):
    ctx = make_ctx(data)
    rs = declarative.run_plan(ctx, data.catalog(),
                              declarative.q3_join_plan(data.catalog()))
    cust = data.customer
    orders = data.orders
    seg_dict = cust["c_mktsegment"].dictionary
    building = cust["c_custkey"].values[
        cust["c_mktsegment"].values == seg_dict.encode(SEGMENT)]
    mask = ((orders["o_orderdate"].values < encode_date(PIVOT))
            & np.isin(orders["o_custkey"].values, building))
    assert rs.column("qualifying_orders")[0] == int(mask.sum())
    assert rs.column("sum_totalprice")[0] == int(
        orders["o_totalprice"].values[mask].sum())


def test_plan_variants_charge_operator_time(data):
    ctx = make_ctx(data)
    declarative.run_plan(ctx, data.catalog(),
                         declarative.q3_join_plan(data.catalog()))
    assert "hash_join" in ctx.profile.times_ps
    assert "select.cpu" in ctx.profile.times_ps
    assert ctx.profile.total_ps() > 0
