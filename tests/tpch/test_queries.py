"""Tests for the five profiled TPC-H queries.

Each query's operator pipeline must agree with its pure-NumPy reference —
both on the CPU path and with JAFAR pushdown enabled (the pushed-down plan
must not change results, only time).
"""

import numpy as np
import pytest

from repro.columnstore import ExecutionContext, StorageManager
from repro.config import XEON_PLATFORM
from repro.system import Machine
from repro.tpch import PROFILED_QUERIES, generate

SCALE = 0.002


@pytest.fixture(scope="module")
def data():
    return generate(scale=SCALE, seed=11)


def run_query(data, name, use_ndp=False, **ctx_kwargs):
    machine = Machine(XEON_PLATFORM)
    storage = StorageManager(machine, default_dimm=None)
    for table in data.tables():
        storage.load_table(table)
    ctx = ExecutionContext(machine, storage, use_ndp=use_ndp, **ctx_kwargs)
    return PROFILED_QUERIES[name].run(ctx, data.catalog()), ctx


@pytest.mark.parametrize("name", list(PROFILED_QUERIES))
def test_query_matches_reference_cpu(data, name):
    result, _ = run_query(data, name)
    assert result.rows == PROFILED_QUERIES[name].reference(data)


@pytest.mark.parametrize("name", list(PROFILED_QUERIES))
def test_query_matches_reference_with_ndp(data, name):
    result, ctx = run_query(data, name, use_ndp=True)
    assert result.rows == PROFILED_QUERIES[name].reference(data)
    if name != "Q18":  # Q18 has no select to push down (whole-table group-by)
        assert "select.jafar" in ctx.profile.times_ps


@pytest.mark.parametrize("name", list(PROFILED_QUERIES))
def test_query_charges_time_and_profiles_operators(data, name):
    result, ctx = run_query(data, name)
    assert result.duration_ps > 0
    assert ctx.profile.total_ps() > 0
    assert result.operator_times_ps  # per-operator breakdown captured


def test_q1_group_structure(data):
    result, _ = run_query(data, "Q1")
    flags = [(r["l_returnflag"], r["l_linestatus"]) for r in result.rows]
    assert flags == sorted(flags)
    # dbgen correlation: N only pairs with O; A/R only with F.
    for rf, ls in flags:
        assert (ls == "O") == (rf == "N")


def test_q1_counts_cover_filtered_rows(data):
    result, _ = run_query(data, "Q1")
    from repro.columnstore import encode_date
    from repro.tpch.queries.q1 import CUTOFF
    expected = int((data.lineitem["l_shipdate"].values
                    <= encode_date(CUTOFF)).sum())
    assert sum(r["count_order"] for r in result.rows) == expected


def test_q3_returns_top10_descending_revenue(data):
    result, _ = run_query(data, "Q3")
    revenues = [r["revenue"] for r in result.rows]
    assert revenues == sorted(revenues, reverse=True)
    assert len(result.rows) <= 10


def test_q6_revenue_positive_and_small_selection(data):
    result, _ = run_query(data, "Q6")
    row = result.rows[0]
    assert row["revenue"] > 0
    assert row["rows_selected"] < 0.05 * data.lineitem.num_rows


def test_q18_threshold_respected(data):
    result, _ = run_query(data, "Q18")
    assert all(r["sum_qty"] > 300 for r in result.rows)
    prices = [r["o_totalprice"] for r in result.rows]
    assert prices == sorted(prices, reverse=True)


def test_q22_customers_have_no_orders(data):
    result, _ = run_query(data, "Q22")
    assert result.rows  # the anti-join has real victims by construction
    from repro.tpch.queries.q22 import COUNTRY_CODES
    assert all(r["cntrycode"] in COUNTRY_CODES for r in result.rows)
    assert all(r["numcust"] > 0 for r in result.rows)


def test_interpreter_tax_slows_queries(data):
    fast, _ = run_query(data, "Q6")
    slow, _ = run_query(data, "Q6", interpreter_cycles_per_row=100.0,
                        cache_resident_intermediates=True)
    assert slow.duration_ps > 2 * fast.duration_ps
