"""Tests for the scaled TPC-H data generator."""

from datetime import date

import numpy as np
import pytest

from repro.columnstore import encode_date
from repro.tpch import generate, rows_at_scale
from repro.tpch.datagen import ORDER_WINDOW_END, ORDER_WINDOW_START
from repro.tpch.text import country_code, customer_names, phone_numbers


@pytest.fixture(scope="module")
def data():
    return generate(scale=0.002, seed=7)


def test_cardinality_ratios(data):
    assert data.customer.num_rows == rows_at_scale("customer", 0.002)
    assert data.orders.num_rows == rows_at_scale("orders", 0.002)
    # lineitem averages 4 lines per order (U[1,7]).
    ratio = data.lineitem.num_rows / data.orders.num_rows
    assert 3.5 <= ratio <= 4.5


def test_rows_at_scale_validation():
    with pytest.raises(ValueError):
        rows_at_scale("orders", 0)
    assert rows_at_scale("customer", 1.0) == 150_000


def test_determinism():
    a = generate(scale=0.001, seed=3)
    b = generate(scale=0.001, seed=3)
    assert (a.lineitem["l_extendedprice"].values
            == b.lineitem["l_extendedprice"].values).all()
    c = generate(scale=0.001, seed=4)
    # Different seed: same orders cardinality, different values.
    assert not (a.orders["o_orderdate"].values
                == c.orders["o_orderdate"].values).all()


def test_foreign_keys_valid(data):
    custkeys = set(data.customer["c_custkey"].values.tolist())
    assert set(data.orders["o_custkey"].values.tolist()) <= custkeys
    orderkeys = set(data.orders["o_orderkey"].values.tolist())
    assert set(data.lineitem["l_orderkey"].values.tolist()) <= orderkeys


def test_every_third_customer_has_no_orders(data):
    ordering_custkeys = set(data.orders["o_custkey"].values.tolist())
    skipped = [k for k in data.customer["c_custkey"].values.tolist()
               if k % 3 == 0]
    assert not ordering_custkeys.intersection(skipped)


def test_order_dates_in_window(data):
    dates = data.orders["o_orderdate"].values
    assert dates.min() >= encode_date(ORDER_WINDOW_START)
    assert dates.max() <= encode_date(ORDER_WINDOW_END)


def test_ship_commit_receipt_ordering(data):
    li = data.lineitem
    # receiptdate strictly follows shipdate (1-30 days).
    gap = li["l_receiptdate"].values - li["l_shipdate"].values
    assert gap.min() >= 1 and gap.max() <= 30


def test_value_domains(data):
    li = data.lineitem
    assert li["l_quantity"].values.min() >= 1
    assert li["l_quantity"].values.max() <= 50
    assert li["l_discount"].values.min() >= 0
    assert li["l_discount"].values.max() <= 10
    assert li["l_tax"].values.max() <= 8


def test_returnflag_linestatus_correlated_with_date(data):
    from repro.tpch.datagen import STATUS_CUTOVER
    li = data.lineitem
    cut = encode_date(STATUS_CUTOVER)
    recent = li["l_shipdate"].values > cut
    ls_dict = li["l_linestatus"].dictionary
    rf_dict = li["l_returnflag"].dictionary
    status = li["l_linestatus"].values
    flags = li["l_returnflag"].values
    assert (status[recent] == ls_dict.encode("O")).all()
    assert (status[~recent] == ls_dict.encode("F")).all()
    assert (flags[recent] == rf_dict.encode("N")).all()
    assert set(np.unique(flags[~recent]).tolist()) == {
        rf_dict.encode("A"), rf_dict.encode("R")}


def test_totalprice_is_sum_of_lines(data):
    li = data.lineitem
    orders = data.orders
    expected = np.zeros(orders.num_rows, dtype=np.int64)
    np.add.at(expected, li["l_orderkey"].values - 1,
              li["l_extendedprice"].values)
    assert (orders["o_totalprice"].values == expected).all()


def test_q1_and_q6_selectivities(data):
    """The filter selectivities the profiled queries depend on."""
    li = data.lineitem
    ship = li["l_shipdate"].values
    q1 = (ship <= encode_date(date(1998, 9, 2))).mean()
    assert 0.95 <= q1 <= 1.0
    q6 = ((ship >= encode_date(date(1994, 1, 1)))
          & (ship <= encode_date(date(1994, 12, 31)))
          & (li["l_discount"].values >= 5)
          & (li["l_discount"].values <= 7)
          & (li["l_quantity"].values < 24)).mean()
    assert 0.01 <= q6 <= 0.03


class TestText:
    def test_phone_country_codes(self):
        rng = np.random.default_rng(0)
        nations = np.array([0, 14, 24])
        phones = phone_numbers(nations, rng)
        assert [country_code(p) for p in phones] == ["10", "24", "34"]

    def test_phone_format(self):
        rng = np.random.default_rng(0)
        phone = phone_numbers(np.array([5]), rng)[0]
        parts = phone.split("-")
        assert len(parts) == 4
        assert parts[0] == "15"

    def test_customer_names(self):
        assert customer_names(np.array([7]))[0] == "Customer#000000007"
