"""The committed perf trajectory: record-history append + regression gate,
and the compare-backends graceful-degradation contract."""

import json

import pytest

from repro.bench import SweepConfig, run_sweep
from repro.bench.__main__ import main as bench_main
from repro.bench.orchestrator import (check_history_regression,
                                      compare_backends, read_history,
                                      record_history)
from repro.errors import ConfigError

TINY = [
    SweepConfig("fig3_point", rows=1024, selectivity=0.0),
    SweepConfig("fig3_point", rows=2048, selectivity=1.0),
]


def _fresh_report(tmp_path):
    return run_sweep(TINY, cache_dir=tmp_path / "cache", serial=True,
                     use_cache=False)


class TestRecordHistory:
    def test_entry_shape_and_append(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        report = _fresh_report(tmp_path)
        entry = record_history(report, history)
        assert entry["fingerprint"] == report["fingerprint"]
        assert entry["backend"] == report["backend"]
        assert entry["rows"] == 2048          # the largest row count swept
        assert entry["num_points"] == len(TINY)
        assert entry["total_wall_s"] == report["total_wall_s"]
        assert entry["total_wall_speedup"] is None   # no predecessor
        assert entry["ff_skipped_events"] == report["ff_skipped_events"]
        on_disk = read_history(history)
        assert on_disk == [entry]

    def test_speedup_vs_comparable_predecessor(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        first = record_history(_fresh_report(tmp_path), history)
        second = record_history(_fresh_report(tmp_path), history)
        assert second["total_wall_speedup"] == pytest.approx(
            first["total_wall_s"] / second["total_wall_s"])

    def test_different_point_set_not_compared(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        record_history(_fresh_report(tmp_path), history)
        other = run_sweep([SweepConfig("fig3_point", rows=512)],
                          cache_dir=tmp_path / "cache", serial=True,
                          use_cache=False)
        entry = record_history(other, history)
        assert entry["total_wall_speedup"] is None

    def test_cached_run_refused(self, tmp_path):
        warm = run_sweep(TINY, cache_dir=tmp_path / "cache", serial=True)
        warm = run_sweep(TINY, cache_dir=tmp_path / "cache", serial=True)
        assert warm["cache_hits"] > 0
        with pytest.raises(ConfigError):
            record_history(warm, tmp_path / "hist.jsonl")

    def test_corrupt_lines_skipped(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        history.write_text('not json\n{"points_sig": "x"}\n',
                           encoding="utf-8")
        assert read_history(history) == [{"points_sig": "x"}]


class TestHistoryGate:
    def _seed(self, history, wall, sig="a,b"):
        with history.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"points_sig": sig, "total_wall_s": wall}) + "\n")

    def test_empty_and_single_entry_pass(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        ok, _ = check_history_regression(history)
        assert ok
        self._seed(history, 1.0)
        ok, msg = check_history_regression(history)
        assert ok and "no comparable predecessor" in msg

    def test_within_tolerance_passes(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        self._seed(history, 1.0)
        self._seed(history, 1.05)
        ok, _ = check_history_regression(history)
        assert ok

    def test_regression_fails(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        self._seed(history, 1.0)
        self._seed(history, 1.2)
        ok, msg = check_history_regression(history)
        assert not ok and "regression" in msg

    def test_incomparable_signatures_pass(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        self._seed(history, 1.0, sig="a")
        self._seed(history, 9.0, sig="b")
        ok, _ = check_history_regression(history)
        assert ok

    def test_cli_record_and_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        history = tmp_path / "hist.jsonl"
        argv = ["--smoke", "--serial", "--cache-dir", str(tmp_path / "c"),
                "--output", str(tmp_path / "out.json"),
                "--record-history", str(history), "--history-gate"]
        assert bench_main(argv) == 0
        assert bench_main(argv) == 0      # comparable rerun still passes
        entries = read_history(history)
        assert len(entries) == 2
        # A synthetic 10x regression must flip the gate to failure.
        slow = dict(entries[-1])
        slow["total_wall_s"] = entries[-1]["total_wall_s"] * 10
        with history.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(slow) + "\n")
        ok, _ = check_history_regression(history)
        assert not ok
        out = capsys.readouterr().out
        assert "history entry appended" in out
        assert "history gate: ok" in out


class TestCompareBackendsDegradation:
    def test_unavailable_backend_skipped_with_note(self, tmp_path):
        report = compare_backends(
            [SweepConfig("fig3_point", rows=512)],
            backends=("python", "numba"),
            cache_dir=tmp_path / "cache")
        compare = report["backend_compare"]
        from repro.compute import available_backends

        if "numba" in available_backends():
            assert compare["backends"] == ["python", "numba"]
            assert compare["skipped_backends"] == []
        else:
            assert compare["backends"] == ["python"]
            assert compare["skipped_backends"] == [
                {"backend": "numba",
                 "reason": "unavailable in this environment"}]
        assert compare["identical"]

    def test_all_backends_unavailable_is_an_error(self, tmp_path):
        with pytest.raises(ConfigError):
            compare_backends([SweepConfig("fig3_point", rows=512)],
                             backends=("cuda",),
                             cache_dir=tmp_path / "cache")

    def test_cli_exits_zero_with_skipped_backend(self, tmp_path, capsys):
        from repro.compute import available_backends

        if "numba" in available_backends():
            pytest.skip("numba present: nothing to skip in this environment")
        code = bench_main(["--smoke", "--compare-backends",
                           "--cache-dir", str(tmp_path / "c"),
                           "--output", str(tmp_path / "out.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "skipped" in out
