"""Round-trip tests: the result store, its keys, and concurrent writers."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.bench import ResultStore, SweepConfig, code_fingerprint
from repro.bench.store import cache_key
from repro.errors import ConfigError

PAYLOAD = {"cpu_ps": 123_456_789, "jafar_ps": 23_456_789, "matches": 4096,
           "nested": {"speedup": 5.26, "flags": [True, False, None]}}


class TestKeys:
    def test_key_is_stable_across_equal_configs(self):
        a = SweepConfig("fig3_point", rows=4096, selectivity=0.5)
        b = SweepConfig("fig3_point", rows=4096, selectivity=0.5)
        assert a.canonical_json() == b.canonical_json()
        assert cache_key(a, "fp") == cache_key(b, "fp")

    def test_key_changes_with_any_knob(self):
        base = SweepConfig("fig3_point", rows=4096, selectivity=0.5)
        variants = [
            SweepConfig("fig3_point", rows=8192, selectivity=0.5),
            SweepConfig("fig3_point", rows=4096, selectivity=0.6),
            SweepConfig("fig3_point", rows=4096, selectivity=0.5,
                        grade="DDR3-1066G"),
            SweepConfig("fig3_point", rows=4096, selectivity=0.5,
                        buffer_bits=64),
            SweepConfig("fig3_point", rows=4096, selectivity=0.5, seed=43),
            SweepConfig("scan_estimate", rows=4096, selectivity=0.5),
        ]
        keys = {cache_key(v, "fp") for v in variants}
        assert len(keys) == len(variants)
        assert cache_key(base, "fp") not in keys

    def test_key_changes_with_code_fingerprint(self):
        config = SweepConfig("fig3_point")
        assert cache_key(config, "fp-a") != cache_key(config, "fp-b")

    def test_real_fingerprint_is_stable_in_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            SweepConfig("no_such_experiment")
        with pytest.raises(ConfigError):
            SweepConfig("fig3_point", rows=0)
        with pytest.raises(ConfigError):
            SweepConfig("fig3_point", selectivity=1.5)
        with pytest.raises(ConfigError):
            SweepConfig("fig3_point", grade="DDR4-3200")
        with pytest.raises(ConfigError):
            SweepConfig("fig3_point", buffer_bits=100)


class TestStoreRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = "a" * 64
        assert store.get(key) is None
        assert key not in store
        store.put(key, PAYLOAD)
        assert key in store
        assert store.get(key) == PAYLOAD
        assert len(store) == 1

    def test_put_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("b" * 64, PAYLOAD)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "c" * 64
        store.put(key, {"v": 1})
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}
        assert len(store) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "d" * 64
        (tmp_path / f"{key}.json").write_text("{truncated", encoding="utf-8")
        assert store.get(key) is None


def _pool_put(args):
    """Top-level worker: hammer one store key from a separate process."""
    root, key, value = args
    store = ResultStore(root)
    for _ in range(20):
        store.put(key, {"value": value, "blob": "x" * 4096})
    return store.get(key) is not None


class TestConcurrentWriters:
    def test_process_pool_writers_never_tear_an_entry(self, tmp_path):
        """Four processes replace the same entry concurrently; every read —
        during and after — must see one complete JSON document."""
        key = "e" * 64
        jobs = [(str(tmp_path), key, worker) for worker in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(_pool_put, jobs))
        assert all(results)
        final = json.loads((tmp_path / f"{key}.json").read_text())
        assert final["value"] in range(4)
        assert len(final["blob"]) == 4096
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_distinct_keys_from_pool_all_land(self, tmp_path):
        jobs = [(str(tmp_path), f"{i:064x}", i) for i in range(8)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            assert all(pool.map(_pool_put, jobs))
        store = ResultStore(tmp_path)
        assert len(store) == 8
        for i in range(8):
            assert store.get(f"{i:064x}")["value"] == i
