"""End-to-end orchestrator tests at tiny scale: order, cache, deltas, CLI."""

import json

import pytest

from repro.bench import SweepConfig, enumerate_sweep, run_sweep, smoke_sweep
from repro.bench.__main__ import main as bench_main
from repro.bench.orchestrator import (HOST_ONLY_POINT_FIELDS,
                                      compare_backends, compute_deltas,
                                      diff_reports, simulated_view,
                                      write_results)
from repro.bench.store import cache_key

TINY = [
    SweepConfig("fig3_point", rows=2048, selectivity=0.0),
    SweepConfig("fig3_point", rows=2048, selectivity=1.0),
    SweepConfig("scan_estimate", rows=2048, selectivity=0.5),
]


class TestRunSweep:
    def test_report_keeps_config_order_and_shape(self, tmp_path):
        report = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        assert report["num_points"] == len(TINY)
        assert [p["name"] for p in report["points"]] == [c.name for c in TINY]
        assert report["cache_hits"] == 0
        for point in report["points"]:
            assert point["result"]
            assert len(point["key"]) == 64
            assert point["wall_s"] >= 0

    def test_second_run_hits_cache_with_identical_results(self, tmp_path):
        first = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        assert second["cache_hits"] == len(TINY)
        assert ([p["result"] for p in first["points"]]
                == [p["result"] for p in second["points"]])

    def test_no_cache_recomputes(self, tmp_path):
        run_sweep(TINY, cache_dir=tmp_path, serial=True)
        again = run_sweep(TINY, cache_dir=tmp_path, use_cache=False,
                          serial=True)
        assert again["cache_hits"] == 0

    def test_pool_and_serial_agree(self, tmp_path):
        serial = run_sweep(TINY, cache_dir=tmp_path / "a", serial=True)
        pooled = run_sweep(TINY, workers=2, cache_dir=tmp_path / "b")
        assert ([p["result"] for p in serial["points"]]
                == [p["result"] for p in pooled["points"]])
        assert ([p["key"] for p in serial["points"]]
                == [p["key"] for p in pooled["points"]])


class TestDeltasAndOutput:
    def test_deltas_flag_identical_simulated_output(self, tmp_path):
        first = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        deltas = compute_deltas(second, first)
        assert set(deltas["points"]) == {c.name for c in TINY}
        assert all(d["sim_identical"] for d in deltas["points"].values())

    def test_deltas_catch_changed_results(self, tmp_path):
        first = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second["points"][0] = dict(second["points"][0],
                                   result={"cpu_ps": -1})
        deltas = compute_deltas(second, first)
        assert not deltas["points"][TINY[0].name]["sim_identical"]
        assert deltas["points"][TINY[1].name]["sim_identical"]

    def test_write_results_attaches_deltas_on_rewrite(self, tmp_path):
        out = tmp_path / "BENCH_results.json"
        report1 = run_sweep(TINY, cache_dir=tmp_path / "c", serial=True)
        written1 = write_results(report1, out)
        assert "deltas" not in written1
        report2 = run_sweep(TINY, cache_dir=tmp_path / "c", serial=True)
        written2 = write_results(report2, out)
        assert written2["deltas"]["points"]
        on_disk = json.loads(out.read_text())
        assert on_disk["deltas"] == written2["deltas"]


class TestWarmRerunCacheHits:
    """Regression: the top-level cache_hits counter must agree with the
    per-point ``cached`` flags on a warm rerun, in the report run_sweep
    assembles AND in the file write_results puts on disk."""

    def test_reduce_step_counts_per_point_flags(self, tmp_path):
        run_sweep(TINY, cache_dir=tmp_path, serial=True)
        warm = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        per_point = sum(1 for p in warm["points"] if p["cached"])
        assert per_point == len(TINY)
        assert warm["cache_hits"] == per_point

    def test_written_report_preserves_cache_hits(self, tmp_path):
        out = tmp_path / "BENCH_results.json"
        write_results(run_sweep(TINY, cache_dir=tmp_path, serial=True), out)
        write_results(run_sweep(TINY, cache_dir=tmp_path, serial=True), out)
        on_disk = json.loads(out.read_text())
        assert any(p["cached"] for p in on_disk["points"])
        assert (on_disk["cache_hits"]
                == sum(1 for p in on_disk["points"] if p["cached"]))


class TestFastForwardReporting:
    def test_fresh_points_report_skipped_events(self, tmp_path):
        report = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        for point in report["points"]:
            assert point["ff_skipped_events"] is not None
        assert report["ff_skipped_events"] == sum(
            p["ff_skipped_events"] for p in report["points"])

    def test_cached_points_report_none(self, tmp_path):
        run_sweep(TINY, cache_dir=tmp_path, serial=True)
        warm = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        assert all(p["ff_skipped_events"] is None for p in warm["points"])
        assert warm["ff_skipped_events"] is None

    def test_exact_matches_fast_forward_simulated_fields(self, tmp_path):
        fast = run_sweep(TINY, cache_dir=tmp_path / "a", serial=True)
        exact = run_sweep(TINY, cache_dir=tmp_path / "b", serial=True,
                          exact=True)
        assert exact["exact"] is True
        assert diff_reports(fast, exact) == []
        assert ([p["result"] for p in fast["points"]]
                == [p["result"] for p in exact["points"]])


class TestSimulatedFieldDiff:
    def test_view_strips_exactly_the_host_fields(self, tmp_path):
        report = run_sweep(TINY[:1], cache_dir=tmp_path, serial=True)
        point = report["points"][0]
        view = simulated_view(point)
        for field in HOST_ONLY_POINT_FIELDS:
            assert field in point and field not in view
        assert "key" not in view
        assert view["result"] == point["result"]

    def test_diff_ignores_host_timing_fields(self, tmp_path):
        report = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        other = dict(report, points=[
            dict(p, wall_s=p["wall_s"] + 1.0, cached=not p["cached"],
                 ff_skipped_events=None)
            for p in report["points"]])
        assert diff_reports(report, other) == []

    def test_diff_catches_simulated_changes_and_missing_points(self, tmp_path):
        report = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        changed = dict(report, points=[
            dict(report["points"][0], result={"cpu_ps": -1})
        ] + report["points"][1:])
        assert diff_reports(report, changed) == [TINY[0].name]
        shorter = dict(report, points=report["points"][1:])
        assert diff_reports(report, shorter) == [TINY[0].name]

    def test_cli_diff(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        write_results(run_sweep(TINY, cache_dir=tmp_path, serial=True), out_a)
        write_results(run_sweep(TINY, cache_dir=tmp_path, serial=True,
                                exact=True), out_b)
        assert bench_main(["--diff", str(out_a), str(out_b)]) == 0
        report = json.loads(out_b.read_text())
        report["points"][0]["result"] = {"cpu_ps": -1}
        out_b.write_text(json.dumps(report))
        assert bench_main(["--diff", str(out_a), str(out_b)]) == 1
        assert "differ" in capsys.readouterr().out


class TestBackendCacheIsolation:
    """Regression: backends share the cache *directory* but never entries.

    The results are bit-identical by contract, so cross-pollination would go
    unnoticed in outputs — but a cached python-backend point reported as a
    numpy run would falsify the wall-clock numbers and hide backend bugs
    from any uncached rerun. The backend therefore lives in the cache key.
    """

    def test_backend_is_part_of_cache_key(self):
        pytest.importorskip("numpy")
        cfg = TINY[0]
        assert (cache_key(cfg, "fp", "python")
                != cache_key(cfg, "fp", "numpy"))
        assert cache_key(cfg, "fp", "python") == cache_key(cfg, "fp", "python")

    def test_warm_rerun_never_crosses_backends(self, tmp_path):
        pytest.importorskip("numpy")
        cold_py = run_sweep(TINY, cache_dir=tmp_path, serial=True,
                            backend="python")
        assert cold_py["cache_hits"] == 0
        # A different backend over the same cache dir must also run cold.
        cold_np = run_sweep(TINY, cache_dir=tmp_path, serial=True,
                            backend="numpy")
        assert cold_np["cache_hits"] == 0
        # ...while each backend's own rerun is fully warm.
        warm_py = run_sweep(TINY, cache_dir=tmp_path, serial=True,
                            backend="python")
        warm_np = run_sweep(TINY, cache_dir=tmp_path, serial=True,
                            backend="numpy")
        assert warm_py["cache_hits"] == len(TINY)
        assert warm_np["cache_hits"] == len(TINY)
        for report in (cold_py, warm_py):
            assert report["backend"] == "python"
            assert all(p["backend"] == "python" for p in report["points"])
        for report in (cold_np, warm_np):
            assert report["backend"] == "numpy"
        # The bit-identity contract: all four reports diff clean.
        assert diff_reports(cold_py, cold_np) == []
        assert diff_reports(cold_py, warm_py) == []
        assert diff_reports(cold_py, warm_np) == []

    def test_compare_backends_reports_identity_and_walls(self, tmp_path):
        pytest.importorskip("numpy")
        report = compare_backends(TINY, cache_dir=tmp_path)
        compare = report["backend_compare"]
        assert compare["identical"] is True
        assert compare["mismatched_points"] == []
        assert set(compare["points"]) == {c.name for c in TINY}
        for walls in compare["points"].values():
            assert walls["python_wall_s"] >= 0
            assert walls["numpy_wall_s"] >= 0
        assert compare["total"]["wall_speedup"] > 0

    def test_cli_backend_flag(self, tmp_path, capsys):
        code = bench_main(["--smoke", "--serial", "--backend", "python",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--output", str(tmp_path / "out.json")])
        assert code == 0
        assert "python backend" in capsys.readouterr().out
        report = json.loads((tmp_path / "out.json").read_text())
        assert report["backend"] == "python"


class TestSweepsAndCLI:
    def test_smoke_sweep_is_four_points(self):
        configs = smoke_sweep()
        assert len(configs) == 4
        assert len({c.name for c in configs}) == 4

    def test_enumerate_dedupes_across_sweeps(self):
        once = enumerate_sweep(["fig3"], rows=1024)
        twice = enumerate_sweep(["fig3", "fig3"], rows=1024)
        assert once == twice

    def test_cli_list_and_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert bench_main(["--smoke", "--list"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4
        code = bench_main(["--smoke", "--serial",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--output", str(tmp_path / "out.json")])
        assert code == 0
        report = json.loads((tmp_path / "out.json").read_text())
        assert report["num_points"] == 4
        # Second CLI run: all cached, deltas report identical sim output.
        code = bench_main(["--smoke", "--serial",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--output", str(tmp_path / "out.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cached" in out
        assert "identical to previous run" in out
