"""End-to-end orchestrator tests at tiny scale: order, cache, deltas, CLI."""

import json

from repro.bench import SweepConfig, enumerate_sweep, run_sweep, smoke_sweep
from repro.bench.__main__ import main as bench_main
from repro.bench.orchestrator import compute_deltas, write_results

TINY = [
    SweepConfig("fig3_point", rows=2048, selectivity=0.0),
    SweepConfig("fig3_point", rows=2048, selectivity=1.0),
    SweepConfig("scan_estimate", rows=2048, selectivity=0.5),
]


class TestRunSweep:
    def test_report_keeps_config_order_and_shape(self, tmp_path):
        report = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        assert report["num_points"] == len(TINY)
        assert [p["name"] for p in report["points"]] == [c.name for c in TINY]
        assert report["cache_hits"] == 0
        for point in report["points"]:
            assert point["result"]
            assert len(point["key"]) == 64
            assert point["wall_s"] >= 0

    def test_second_run_hits_cache_with_identical_results(self, tmp_path):
        first = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        assert second["cache_hits"] == len(TINY)
        assert ([p["result"] for p in first["points"]]
                == [p["result"] for p in second["points"]])

    def test_no_cache_recomputes(self, tmp_path):
        run_sweep(TINY, cache_dir=tmp_path, serial=True)
        again = run_sweep(TINY, cache_dir=tmp_path, use_cache=False,
                          serial=True)
        assert again["cache_hits"] == 0

    def test_pool_and_serial_agree(self, tmp_path):
        serial = run_sweep(TINY, cache_dir=tmp_path / "a", serial=True)
        pooled = run_sweep(TINY, workers=2, cache_dir=tmp_path / "b")
        assert ([p["result"] for p in serial["points"]]
                == [p["result"] for p in pooled["points"]])
        assert ([p["key"] for p in serial["points"]]
                == [p["key"] for p in pooled["points"]])


class TestDeltasAndOutput:
    def test_deltas_flag_identical_simulated_output(self, tmp_path):
        first = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        deltas = compute_deltas(second, first)
        assert set(deltas["points"]) == {c.name for c in TINY}
        assert all(d["sim_identical"] for d in deltas["points"].values())

    def test_deltas_catch_changed_results(self, tmp_path):
        first = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second = run_sweep(TINY, cache_dir=tmp_path, serial=True)
        second["points"][0] = dict(second["points"][0],
                                   result={"cpu_ps": -1})
        deltas = compute_deltas(second, first)
        assert not deltas["points"][TINY[0].name]["sim_identical"]
        assert deltas["points"][TINY[1].name]["sim_identical"]

    def test_write_results_attaches_deltas_on_rewrite(self, tmp_path):
        out = tmp_path / "BENCH_results.json"
        report1 = run_sweep(TINY, cache_dir=tmp_path / "c", serial=True)
        written1 = write_results(report1, out)
        assert "deltas" not in written1
        report2 = run_sweep(TINY, cache_dir=tmp_path / "c", serial=True)
        written2 = write_results(report2, out)
        assert written2["deltas"]["points"]
        on_disk = json.loads(out.read_text())
        assert on_disk["deltas"] == written2["deltas"]


class TestSweepsAndCLI:
    def test_smoke_sweep_is_four_points(self):
        configs = smoke_sweep()
        assert len(configs) == 4
        assert len({c.name for c in configs}) == 4

    def test_enumerate_dedupes_across_sweeps(self):
        once = enumerate_sweep(["fig3"], rows=1024)
        twice = enumerate_sweep(["fig3", "fig3"], rows=1024)
        assert once == twice

    def test_cli_list_and_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert bench_main(["--smoke", "--list"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4
        code = bench_main(["--smoke", "--serial",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--output", str(tmp_path / "out.json")])
        assert code == 0
        report = json.loads((tmp_path / "out.json").read_text())
        assert report["num_points"] == 4
        # Second CLI run: all cached, deltas report identical sim output.
        code = bench_main(["--smoke", "--serial",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--output", str(tmp_path / "out.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cached" in out
        assert "identical to previous run" in out
