"""Tests for workload generators and selectivity solving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    DOMAIN_MAX,
    achieved_selectivity,
    bounds_for_selectivity,
    clustered_runs_column,
    exact_bounds,
    sorted_column,
    uniform_column,
    zipf_column,
)


class TestGenerators:
    def test_uniform_matches_paper_spec(self):
        """§3.1: random integers uniformly distributed in [0, 1M)."""
        values = uniform_column(100_000, seed=1)
        assert values.dtype == np.int64
        assert values.min() >= 0
        assert values.max() < DOMAIN_MAX
        # Roughly uniform: each decile holds ~10%.
        hist, _ = np.histogram(values, bins=10, range=(0, DOMAIN_MAX))
        assert (np.abs(hist / values.size - 0.1) < 0.02).all()

    def test_deterministic_by_seed(self):
        assert (uniform_column(1000, seed=5) == uniform_column(1000, seed=5)).all()
        assert not (uniform_column(1000, seed=5)
                    == uniform_column(1000, seed=6)).all()

    def test_sorted_column(self):
        values = sorted_column(1000)
        assert (np.diff(values) >= 0).all()

    def test_zipf_skew(self):
        values = zipf_column(10_000, seed=2)
        # Zipf(1.3): the smallest value alone holds 1/zeta(1.3) ~ 26%.
        assert (values == 1).mean() > 0.2
        with pytest.raises(WorkloadError):
            zipf_column(10, a=0.9)

    def test_clustered_runs(self):
        values = clustered_runs_column(1000, run_length=100)
        transitions = int((values[1:] != values[:-1]).sum())
        assert transitions <= 10
        with pytest.raises(WorkloadError):
            clustered_runs_column(10, run_length=0)

    def test_invalid_sizes(self):
        with pytest.raises(WorkloadError):
            uniform_column(0)
        with pytest.raises(WorkloadError):
            uniform_column(10, domain=0)


class TestSelectivity:
    def test_zero_selectivity_bounds_are_legal_but_empty(self):
        low, high = bounds_for_selectivity(0.0)
        assert low <= high  # legal range for JAFAR's register file
        values = uniform_column(10_000)
        assert achieved_selectivity(values, low, high) == 0.0

    def test_full_selectivity(self):
        low, high = bounds_for_selectivity(1.0)
        values = uniform_column(10_000)
        assert achieved_selectivity(values, low, high) == 1.0

    def test_expected_selectivity_close(self):
        values = uniform_column(200_000, seed=3)
        for target in (0.1, 0.5, 0.9):
            low, high = bounds_for_selectivity(target)
            assert achieved_selectivity(values, low, high) == pytest.approx(
                target, abs=0.01)

    def test_exact_bounds_hit_target(self):
        values = uniform_column(50_000, seed=4)
        for target in (0.0, 0.25, 0.75, 1.0):
            low, high = exact_bounds(values, target)
            achieved = achieved_selectivity(values, low, high)
            assert achieved == pytest.approx(target, abs=2 / values.size)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bounds_for_selectivity(1.5)
        with pytest.raises(WorkloadError):
            exact_bounds(np.empty(0, dtype=np.int64), 0.5)
        with pytest.raises(WorkloadError):
            achieved_selectivity(np.empty(0, dtype=np.int64), 0, 1)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_exact_bounds_property(self, target):
        values = uniform_column(5000, seed=9)
        low, high = exact_bounds(values, target)
        assert low <= high
        achieved = achieved_selectivity(values, low, high)
        assert abs(achieved - target) < 0.01 + 1 / 5000
