"""Tests for the Aladdin-style accelerator model."""

import pytest

from repro.accel import (
    JAFAR_RESOURCES,
    LoopBody,
    OpKind,
    build_ddg,
    critical_path_cycles,
    data_movement_savings_pj,
    estimate,
    jafar_filter_body,
    list_schedule,
    op_counts,
    pipeline_analysis,
)
from repro.errors import AccelError, DDGError


class TestLoopBody:
    def test_op_dependency_validation(self):
        body = LoopBody("t")
        body.op("a", OpKind.LOAD)
        with pytest.raises(DDGError, match="unknown op"):
            body.op("b", OpKind.CMP, "missing")
        with pytest.raises(DDGError, match="duplicate"):
            body.op("a", OpKind.CMP)

    def test_carried_dep_validation(self):
        body = LoopBody("t")
        body.op("a", OpKind.ADD)
        with pytest.raises(DDGError):
            body.carry("a", "nope")
        with pytest.raises(DDGError):
            body.carry("a", "a", distance=0)

    def test_resource_uses(self):
        body = jafar_filter_body()
        uses = body.resource_uses()
        assert uses["alu"] == 2   # the two parallel range comparators
        assert uses["mem_port"] == 1


class TestDDG:
    def test_unrolled_graph_size(self):
        body = jafar_filter_body()
        graph = build_ddg(body, iterations=4)
        assert graph.number_of_nodes() == 4 * len(body.ops)

    def test_carried_edges_link_iterations(self):
        body = jafar_filter_body()
        graph = build_ddg(body, iterations=2)
        assert graph.has_edge("acc@0", "acc@1")
        assert graph.has_edge("offset@0", "offset@1")

    def test_critical_path_of_filter_body(self):
        body = jafar_filter_body()
        # load -> cmp -> and -> shift -> or : 5 single-cycle ops.
        assert critical_path_cycles(build_ddg(body, 1)) == 5

    def test_op_counts(self):
        body = jafar_filter_body()
        counts = op_counts(build_ddg(body, 2))
        assert counts["alu"] == 4
        assert counts["mem_port"] == 2

    def test_invalid_iterations(self):
        with pytest.raises(DDGError):
            build_ddg(jafar_filter_body(), 0)


class TestPipelineAnalysis:
    def test_jafar_achieves_one_word_per_cycle_with_two_alus(self):
        """§2.2: two ALUs in parallel for range filters -> the filter
        sustains one word per JAFAR cycle."""
        bounds = pipeline_analysis(jafar_filter_body(), JAFAR_RESOURCES)
        assert bounds.ii == 1
        assert bounds.words_per_cycle == 1.0

    def test_single_alu_halves_throughput(self):
        poor = dict(JAFAR_RESOURCES, alu=1)
        bounds = pipeline_analysis(jafar_filter_body(), poor)
        assert bounds.ii == 2

    def test_equality_filter_needs_fewer_alus(self):
        body = jafar_filter_body(range_filter=False)
        bounds = pipeline_analysis(body, dict(JAFAR_RESOURCES, alu=2))
        assert bounds.ii == 1

    def test_recurrence_bound(self):
        body = LoopBody("acc")
        body.op("x", OpKind.LOAD)
        body.op("sum", OpKind.ADD, "x")
        body.carry("sum", "sum")
        bounds = pipeline_analysis(body, {"mem_port": 4, "alu": 4})
        assert bounds.recurrence_ii == 1
        assert bounds.ii == 1

    def test_total_cycles_formula(self):
        bounds = pipeline_analysis(jafar_filter_body(),
                                   dict(JAFAR_RESOURCES, alu=3))
        assert bounds.total_cycles(1) == bounds.depth_cycles
        assert bounds.total_cycles(100) == bounds.depth_cycles + 99

    def test_missing_resource_raises(self):
        with pytest.raises(DDGError, match="provisioned"):
            pipeline_analysis(jafar_filter_body(), {"alu": 2})


class TestListSchedule:
    def test_respects_dependences(self):
        schedule = list_schedule(jafar_filter_body(), iterations=1)
        a = schedule.assignment
        assert a["w@0"] < a["cmp_lo@0"] < a["pass@0"] < a["bit@0"] < a["acc@0"]

    def test_respects_resource_limits(self):
        body = jafar_filter_body()
        schedule = list_schedule(body, dict(JAFAR_RESOURCES, alu=1),
                                 iterations=2)
        per_cycle: dict[int, int] = {}
        for node, cycle in schedule.assignment.items():
            op = body.find(node.split("@")[0])
            if op.resource == "alu":
                per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert all(count <= 1 for count in per_cycle.values())

    def test_unrolling_improves_ops_per_cycle(self):
        narrow = list_schedule(jafar_filter_body(), iterations=1)
        wide = list_schedule(jafar_filter_body(), iterations=8)
        assert wide.ops_per_cycle > narrow.ops_per_cycle

    def test_unprovisioned_resource_raises(self):
        with pytest.raises(DDGError):
            list_schedule(jafar_filter_body(), {"alu": 0, "mem_port": 1,
                                                "store_port": 1, "logic": 1})


class TestPower:
    def test_estimate_scales_with_iterations(self):
        body = jafar_filter_body()
        one = estimate(body, JAFAR_RESOURCES, 1)
        many = estimate(body, JAFAR_RESOURCES, 1000)
        assert many.total_energy_nj == pytest.approx(one.total_energy_nj * 1000)
        assert many.area_um2 == one.area_um2
        assert one.area_um2 > 0

    def test_invalid_inputs(self):
        with pytest.raises(AccelError):
            estimate(jafar_filter_body(), JAFAR_RESOURCES, 0)
        with pytest.raises(AccelError):
            estimate(jafar_filter_body(), {"alu": -1}, 1)

    def test_data_movement_savings_positive_for_selective_filters(self):
        assert data_movement_savings_pj(10_000, 100) > 0
        # Shipping everything (plus the bitmask) is worse than the CPU path.
        assert data_movement_savings_pj(10_000, 10_000) < 0
        with pytest.raises(AccelError):
            data_movement_savings_pj(10, 20)


class TestUnrolling:
    def test_unroll_replicates_ops(self):
        from repro.accel import unroll
        body = jafar_filter_body()
        wide = unroll(body, 4)
        assert len(wide.ops) == 4 * len(body.ops)
        assert wide.find("w@0") and wide.find("w@3")

    def test_unroll_factor_one_is_identity(self):
        from repro.accel import unroll
        body = jafar_filter_body()
        assert unroll(body, 1) is body

    def test_carried_deps_chain_within_trip_and_wrap(self):
        from repro.accel import unroll
        body = jafar_filter_body()
        wide = unroll(body, 2)
        # Within the trip, acc@1 depends on acc@0 as a plain edge.
        assert "acc@0" in wide.find("acc@1").deps
        # Across trips, acc@1 feeds acc@0 as a carried dependence.
        wrapped = [(d.producer, d.consumer) for d in wide.carried]
        assert ("acc@1", "acc@0") in wrapped

    def test_serial_accumulator_caps_plain_unrolling(self):
        """The bitmask accumulator is a true recurrence: unrolling alone
        cannot exceed one word per cycle no matter how many ALUs."""
        from repro.accel import unrolled_pipeline
        body = jafar_filter_body()
        rich = dict(JAFAR_RESOURCES, alu=8, mem_port=4, logic=32,
                    store_port=4)
        _, base = unrolled_pipeline(body, 1, dict(JAFAR_RESOURCES))
        _, plain = unrolled_pipeline(body, 4, rich)
        assert base == 1.0
        assert plain == pytest.approx(1.0)

    def test_reduction_lanes_beat_the_recurrence(self):
        """Splitting the accumulator into per-copy lanes (the standard
        reduction transform) unlocks factor-x throughput given units."""
        from repro.accel import unrolled_pipeline
        body = jafar_filter_body()
        rich = dict(JAFAR_RESOURCES, alu=8, mem_port=4, logic=32,
                    store_port=4)
        _, fast = unrolled_pipeline(body, 4, rich, split_accumulators=True)
        assert fast > 1.0

    def test_unroll_validation(self):
        from repro.accel import unroll
        with pytest.raises(DDGError):
            unroll(jafar_filter_body(), 0)

    def test_unrolled_body_schedules(self):
        from repro.accel import unroll
        wide = unroll(jafar_filter_body(), 4)
        rich = dict(JAFAR_RESOURCES, alu=8, mem_port=4, logic=32,
                    store_port=4)
        schedule = list_schedule(wide, rich, iterations=1)
        assert schedule.cycles > 0
        assert len(schedule.assignment) == len(wide.ops)
