"""Differential tests for the batched-pipeline kernels (DESIGN.md §12).

``batch_issue``, ``batch_row_timing``, ``batch_mark_busy`` and
``batch_latency_hist`` are exercised on seeded random inputs under every
*available* backend and must agree with the python reference exactly.
Parametrisation runs over all registered backend names — the ``numba`` leg
skips cleanly wherever numba is not installed, and runs for real wherever
it is, so one test file covers both environments.
"""

import numpy as np
import pytest

from repro.compute import BACKEND_NAMES, available_backends
from repro.compute.python_backend import PythonBackend

SEED = 20150601  # DaMoN'15

PY = PythonBackend()


@pytest.fixture(params=[n for n in BACKEND_NAMES if n != "python"])
def other(request):
    """Each non-reference backend, skipping ones this environment lacks."""
    name = request.param
    if name not in available_backends():
        pytest.skip(f"backend {name!r} unavailable in this environment")
    from repro.compute import _build

    return _build(name)


def _seq(x):
    """Normalise a batch_issue sequence (list or int64 ndarray) for =="""
    return [int(v) for v in x]


def _random_row_timing_case(rng):
    base = int(rng.integers(0, 10**9))
    return dict(
        n=int(rng.integers(1, 200)),
        arrival=base + int(rng.integers(0, 50_000)),
        col0=base + int(rng.integers(0, 50_000)),
        busfree0=base + int(rng.integers(0, 50_000)),
        latency=int(rng.integers(1, 20)) * 1000,
        burst=int(rng.integers(1, 10)) * 500,
        tccd=int(rng.integers(1, 8)) * 500,
    )


class TestBatchRowTiming:
    @pytest.mark.parametrize("chained", [False, True])
    def test_matches_reference_on_random_state(self, other, chained):
        rng = np.random.default_rng(SEED + chained)
        for _ in range(50):
            case = _random_row_timing_case(rng)
            assert (PY.batch_row_timing(**case, chained=chained)
                    == other.batch_row_timing(**case, chained=chained)), case

    def test_single_burst_degenerate(self, other):
        case = dict(n=1, arrival=1000, col0=0, busfree0=0, latency=13750,
                    burst=5000, tccd=2500)
        assert (PY.batch_row_timing(**case)
                == other.batch_row_timing(**case))

    def test_matches_sequential_bank_recurrence(self):
        # The reference itself must equal the literal Bank.access row-hit
        # recurrence it documents, for both arrival disciplines.
        rng = np.random.default_rng(SEED)
        for chained in (False, True):
            case = _random_row_timing_case(rng)
            col, busfree = case["col0"], case["busfree0"]
            at = case["arrival"]
            cas_first = cas = de = None
            for i in range(case["n"]):
                cas = max(col, at, busfree - case["latency"])
                de = cas + case["latency"] + case["burst"]
                busfree, col = de, cas + case["tccd"]
                if i == 0:
                    cas_first = cas
                if chained:
                    at = de
            assert (PY.batch_row_timing(**case, chained=chained)
                    == (cas_first, cas, de))


def _random_issue_case(rng, with_outs):
    base = int(rng.integers(0, 10**9))
    m = int(rng.integers(1, 120))
    depth = int(rng.integers(1, min(m, 8) + 1))
    ft = sorted(base + int(v) for v in rng.integers(0, 200_000, depth))
    cps = rng.integers(100, 5000, m).astype(np.int64)
    outs = None
    if with_outs:
        outs = (rng.integers(0, 3, m) * 8.0).astype(np.float64)
    return dict(
        ft=list(ft),
        floor0=base,
        now0=base + int(rng.integers(0, 10_000)),
        cps=cps,
        outs=outs,
        backlog0=float(int(rng.integers(0, 64))),
        post_budget=int(rng.integers(0, 40)),
        line_bytes=64,
        col0=base + int(rng.integers(0, 50_000)),
        busfree0=base + int(rng.integers(0, 50_000)),
        next_ref=(base + int(rng.integers(10_000, 10**6))
                  if rng.random() < 0.5 else 1 << 62),
        cl=13750,
        burst=5000,
        tccd=2500,
    )


class TestBatchIssue:
    @pytest.mark.parametrize("with_outs", [False, True])
    def test_matches_reference_on_random_state(self, other, with_outs):
        rng = np.random.default_rng(SEED + with_outs)
        for _ in range(60):
            case = _random_issue_case(rng, with_outs)
            ref = PY.batch_issue(**case)
            got = other.batch_issue(**case)
            assert ref[0] == got[0], case
            assert _seq(ref[1]) == _seq(got[1]), case
            assert _seq(ref[2]) == _seq(got[2]), case
            assert _seq(ref[3]) == _seq(got[3]), case
            # stall, posts, backlog (exact float), cas_last
            assert ref[4:] == got[4:], case

    def test_refresh_deadline_cuts_run(self, other):
        case = _random_issue_case(np.random.default_rng(SEED), False)
        case["next_ref"] = case["floor0"] + 1  # first line already too late
        ref = PY.batch_issue(**case)
        got = other.batch_issue(**case)
        assert ref[0] == got[0] == 0

    def test_post_budget_cuts_run(self, other):
        case = _random_issue_case(np.random.default_rng(SEED + 7), True)
        case["outs"] = np.full(len(case["cps"]), 128.0, dtype=np.float64)
        case["post_budget"] = 2
        ref = PY.batch_issue(**case)
        got = other.batch_issue(**case)
        assert ref[0] == got[0]
        assert ref[5] == got[5] <= case["post_budget"]


def _fresh_tracker_state():
    # The 12-slot pulled BusyTracker state batch_mark_busy mutates:
    # [cur_start, cur_end, busy_ps, intervals, last_end, first_start,
    #  gap-count, gap-total, gap-total_sq, gap-min, gap-max, gap-buckets].
    return [None, None, 0, 0, None, None, 0, 0, 0, None, None, {}]


class TestBatchFoldKernels:
    def test_batch_mark_busy_matches_reference(self, other):
        rng = np.random.default_rng(SEED)
        for _ in range(30):
            n = int(rng.integers(1, 80))
            starts = np.cumsum(rng.integers(0, 20_000, n)).astype(np.int64)
            ends = starts + rng.integers(1, 30_000, n).astype(np.int64)
            # ends must be non-decreasing too (bus-serialised callers).
            ends = np.maximum.accumulate(ends)
            s_ref = _fresh_tracker_state()
            s_got = _fresh_tracker_state()
            PY.batch_mark_busy(s_ref, starts, ends)
            other.batch_mark_busy(s_got, starts, ends)
            assert s_ref == s_got

    def test_batch_latency_hist_matches_reference(self, other):
        rng = np.random.default_rng(SEED)
        for _ in range(30):
            n = int(rng.integers(1, 200))
            lats = rng.integers(0, 1 << 20, n).astype(np.int64)
            b_ref: dict = {}
            b_got: dict = {}
            ref = PY.batch_latency_hist(0, 0, 0, None, None, b_ref, lats)
            got = other.batch_latency_hist(0, 0, 0, None, None, b_got, lats)
            assert ref == got
            assert b_ref == b_got


class TestFusedHitRunAllBackends:
    def test_matches_reference_on_random_state(self, other):
        rng = np.random.default_rng(SEED)
        for _ in range(40):
            cl = int(rng.integers(1, 20)) * 1000
            burst = int(rng.integers(1, 10)) * 500
            tccd = int(rng.integers(1, 8)) * 500
            trtp = int(rng.integers(1, 12)) * 500
            base = int(rng.integers(0, 10**9))
            state = [base + int(rng.integers(0, 50_000)) for _ in range(6)]
            n = int(rng.integers(1, 300))
            next_ref = (base + int(rng.integers(0, 10**7))
                        if rng.random() < 0.5 else 1 << 62)
            wp_full = float(rng.integers(0, 5000)) + float(rng.random())
            args = (n, *state, next_ref, cl, burst, tccd, trtp, wp_full)
            assert PY.fused_hit_run(*args) == other.fused_hit_run(*args), args
