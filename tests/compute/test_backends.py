"""Kernel-level differential tests: numpy backend vs the python reference.

Every kernel of :class:`repro.compute.base.ComputeBackend` is exercised on
seeded random inputs under both implementations and must agree exactly —
values, dtypes, and shapes.  Backend selection (env var, set_backend,
backend_scope) is covered at the bottom.
"""

import numpy as np
import pytest

from repro.compute import (
    BACKEND_NAMES,
    available_backends,
    backend_scope,
    default_backend_name,
    get_backend,
    set_backend,
)
from repro.compute.numpy_backend import NumpyBackend
from repro.compute.python_backend import PythonBackend
from repro.errors import ConfigError
from repro.sim.fastforward import Pinned, snapshot_delta

PY = PythonBackend()
NP = NumpyBackend()

SEED = 20150601  # DaMoN'15


def _arrays_equal(a, b):
    return a.dtype == b.dtype and a.shape == b.shape and (a == b).all()


class TestMaskKernels:
    @pytest.mark.parametrize("n", [1, 7, 64, 1000])
    def test_range_mask(self, n):
        rng = np.random.default_rng(SEED + n)
        values = rng.integers(-100, 100, n, dtype=np.int64)
        low, high = sorted(rng.integers(-100, 100, 2).tolist())
        assert _arrays_equal(PY.range_mask(values, low, high),
                             NP.range_mask(values, low, high))

    def test_range_mask_empty_range(self):
        values = np.arange(10, dtype=np.int64)
        assert _arrays_equal(PY.range_mask(values, 5, 4),
                             NP.range_mask(values, 5, 4))

    @pytest.mark.parametrize("n", [1, 8, 9, 200, 4096])
    def test_pack_unpack_popcount_positions(self, n):
        rng = np.random.default_rng(SEED + n)
        mask = rng.random(n) < rng.random()
        packed_py = PY.pack_mask(mask)
        packed_np = NP.pack_mask(mask)
        assert _arrays_equal(packed_py, packed_np)
        assert _arrays_equal(PY.unpack_mask(packed_py, n),
                             NP.unpack_mask(packed_np, n))
        assert PY.popcount(mask) == NP.popcount(mask) == int(mask.sum())
        assert _arrays_equal(PY.flatnonzero(mask), NP.flatnonzero(mask))

    def test_unpack_ignores_padding_bits(self):
        buf = np.full(2, 0xFF, dtype=np.uint8)
        assert _arrays_equal(PY.unpack_mask(buf, 11), NP.unpack_mask(buf, 11))

    def test_merge_masked(self):
        rng = np.random.default_rng(SEED)
        n = 333
        update = rng.random(n) < 0.5
        owned = rng.random(n) < 0.3
        cur_py = rng.random(n) < 0.5
        cur_np = cur_py.copy()
        PY.merge_masked(cur_py, owned, update)
        NP.merge_masked(cur_np, owned, update)
        assert _arrays_equal(cur_py, cur_np)

    @pytest.mark.parametrize("rows_per_line", [1, 3, 8, 16])
    def test_per_line_stats(self, rows_per_line):
        rng = np.random.default_rng(SEED + rows_per_line)
        for n in (1, rows_per_line, 257):
            mask = rng.random(n) < 0.4
            m_py, t_py = PY.per_line_stats(mask, rows_per_line)
            m_np, t_np = NP.per_line_stats(mask, rows_per_line)
            assert _arrays_equal(m_py, m_np)
            assert _arrays_equal(t_py, t_np)


class TestSelectivityKernels:
    def test_count_in_range_and_kth_smallest(self):
        rng = np.random.default_rng(SEED)
        values = rng.integers(0, 1000, 500, dtype=np.int64)
        assert (PY.count_in_range(values, 100, 900)
                == NP.count_in_range(values, 100, 900))
        for k in (1, 250, 500):
            assert PY.kth_smallest(values, k) == NP.kth_smallest(values, k)


class TestFusedHitRun:
    def _random_case(self, rng, big_wp_int):
        cl = int(rng.integers(1, 20)) * 1000
        burst = int(rng.integers(1, 10)) * 500
        tccd = int(rng.integers(1, 8)) * 500
        trtp = int(rng.integers(1, 12)) * 500
        base = int(rng.integers(0, 10**9))
        state = [base + int(rng.integers(0, 50_000)) for _ in range(6)]
        n = int(rng.integers(1, 400))
        next_ref = (base + int(rng.integers(0, 10**7))
                    if rng.random() < 0.5 else 1 << 62)
        if big_wp_int:
            wp_full = float(int(rng.integers(0, 5000)))
        else:
            wp_full = float(rng.integers(0, 5000)) + float(rng.random())
        return (n, *state, next_ref, cl, burst, tccd, trtp, wp_full)

    @pytest.mark.parametrize("integral_wp", [True, False])
    def test_matches_reference_on_random_state(self, integral_wp):
        rng = np.random.default_rng(SEED + integral_wp)
        for trial in range(50):
            args = self._random_case(rng, integral_wp)
            assert PY.fused_hit_run(*args) == NP.fused_hit_run(*args), args

    def test_half_integer_wp_banker_rounding(self):
        # wp_full = x.5 makes round() parity-dependent: the numpy backend
        # must not extrapolate, and must match the reference bit for bit.
        args = (100, 0, 0, 0, 0, 0, 0, 1 << 62, 1000, 500, 500, 500, 2.5)
        assert PY.fused_hit_run(*args) == NP.fused_hit_run(*args)

    def test_steady_state_jump_is_exact(self):
        # A clean cadence that reaches steady state immediately: the numpy
        # backend's O(1) jump must land on the reference's state exactly.
        args = (10_000, 1_000_000, 1_000_000, 1_000_000, 1_000_000,
                1_000_000, 1_000_000, 1 << 62, 10_000, 1250, 2500, 5000,
                160.0)
        assert PY.fused_hit_run(*args) == NP.fused_hit_run(*args)

    def test_refresh_deadline_stops_both(self):
        args = (10_000, 1_000_000, 1_000_000, 1_000_000, 1_000_000,
                1_000_000, 1_000_000, 9_000_000, 10_000, 1250, 2500, 5000,
                160.0)
        out_py = PY.fused_hit_run(*args)
        assert out_py == NP.fused_hit_run(*args)
        assert out_py[0] < 10_000  # the deadline actually cut the run short

    def test_huge_magnitudes_disable_extrapolation_but_agree(self):
        base = (1 << 53) - (1 << 18)
        args = (500, base, base, base, base, base, base, 1 << 62,
                10_000, 1250, 2500, 5000, 160.0)
        assert PY.fused_hit_run(*args) == NP.fused_hit_run(*args)


class TestApplyDeltaKernels:
    CASES = [
        ((100, 7), (10, 0), 5),
        ((100, "rd"), (10, None), 3),
        ((2.0,), (3.0,), 4),
        ((0.5,), (1.0,), 2),
        ((0.0,), (0.3,), 2),
        ((float(2**52),), (float(2**52),), 4),
        ((0.5,), (0.0,), 1000),
        ((2**70, 5), (2**65, -3), 7),       # beyond int64: reference path
        ((1, -(2**64)), (2**64, 1), 2),
        ((5, Pinned("k")), (1, None), 9),
    ]

    @pytest.mark.parametrize("base,delta,periods", CASES)
    def test_matches_reference(self, base, delta, periods):
        assert PY.apply_delta(base, delta, periods) == NP.apply_delta(
            base, delta, periods)

    def test_random_int_snapshots(self):
        rng = np.random.default_rng(SEED)
        for _ in range(100):
            size = int(rng.integers(1, 20))
            prev = tuple(int(v) for v in rng.integers(0, 10**12, size))
            cur = tuple(v + int(d) for v, d in
                        zip(prev, rng.integers(0, 10**6, size)))
            delta = snapshot_delta(prev, cur)
            periods = int(rng.integers(1, 10**4))
            assert (PY.apply_delta(cur, delta, periods)
                    == NP.apply_delta(cur, delta, periods))


class TestMutationSmoke:
    """The differential harness must *catch* an injected kernel bug.

    A green ``analyze backends`` run only means something if a divergent
    backend turns it red, so these tests monkeypatch a realistic off-by-one
    into a numpy kernel and assert the harness verdict flips.
    """

    def _harness(self):
        from repro.analyze.backends import run_backends

        return run_backends(rows=512, modes=("fast-forward",),
                            with_goldens=False)

    def test_unmutated_control_is_green(self):
        report = self._harness()
        assert report["ok"], report

    def test_catches_range_mask_off_by_one(self, monkeypatch):
        def mutant(self, values, low, high):
            # Classic vectorisation off-by-one: the last lane is dropped
            # (as if the kernel iterated n-1 elements).
            mask = (values >= low) & (values <= high)
            if mask.size:
                mask[-1] = False
            return mask

        monkeypatch.setattr(NumpyBackend, "range_mask", mutant)
        report = self._harness()
        assert not report["ok"], (
            "harness missed an off-by-one in numpy range_mask")
        diverged = [c["name"]
                    for c in report["modes"]["fast-forward"]["checks"]
                    if not c["ok"]]
        assert diverged, report

    def test_catches_fused_timing_mutation(self, monkeypatch):
        original = NumpyBackend.fused_hit_run

        def mutant(self, n, cursor, alu_ready, io, b_col, b_dfree, b_pre,
                   next_ref, cl, burst, tccd, trtp, wp_full):
            # One picosecond-tick too many per burst: a pure timing bug
            # that never changes match counts, only simulated durations.
            return original(self, n, cursor, alu_ready, io, b_col, b_dfree,
                            b_pre, next_ref, cl, burst + 1, tccd, trtp,
                            wp_full)

        monkeypatch.setattr(NumpyBackend, "fused_hit_run", mutant)
        report = self._harness()
        assert not report["ok"], (
            "harness missed a timing mutation in numpy fused_hit_run")


class TestBackendSelection:
    def test_registry_names(self):
        assert set(available_backends()) <= set(BACKEND_NAMES)
        assert "python" in available_backends()

    def test_set_backend_round_trip(self):
        before = get_backend().name
        try:
            previous = set_backend("python")
            assert previous == before
            assert get_backend().name == "python"
        finally:
            set_backend(before)

    def test_backend_scope_restores(self):
        before = get_backend().name
        other = "python" if before != "python" else "numpy"
        with backend_scope(other) as backend:
            assert backend.name == other
            assert get_backend().name == other
        assert get_backend().name == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            set_backend("cuda")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert default_backend_name() == "python"
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(ConfigError):
            default_backend_name()
        monkeypatch.delenv("REPRO_BACKEND")
        assert default_backend_name() in available_backends()

    def test_engine_fixture_controls_dispatch(self, engine):
        assert get_backend().name == engine
