"""Regenerate ``golden_values.json`` from the live simulator.

Run only when a timing-model change is intended; the diff of the golden file
is then the reviewable record of exactly which calibrated numbers moved:

    PYTHONPATH=src python -m tests.golden.regen
"""

from __future__ import annotations

import json
import pathlib

from .cases import compute_all

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_values.json")


def main() -> None:
    values = compute_all()
    GOLDEN_PATH.write_text(json.dumps(values, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    print(f"wrote {len(values)} golden case(s) to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
