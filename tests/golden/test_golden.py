"""Golden regression tests: exact simulated-time pins at small scale.

These are the safety net under every hot-path refactor: the simulator's
contract is *bit-identical* outputs, so each case's value must equal the
recorded golden exactly — integer picoseconds, match counts, command-stream
hashes, and the closed-form float estimates alike.

If a test fails because a timing-model change was *intended*, regenerate and
review the diff:

    PYTHONPATH=src python -m tests.golden.regen
"""

import json

import pytest

from .cases import CASES
from .regen import GOLDEN_PATH


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():  # pragma: no cover - setup error
        pytest.fail(f"{GOLDEN_PATH} missing; run `python -m tests.golden.regen`")
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_golden_file_covers_every_case(golden):
    assert sorted(golden) == sorted(CASES), (
        "golden file out of sync with cases; regenerate via tests.golden.regen"
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name, golden, engine):
    actual = CASES[name]()
    assert actual == golden[name], (
        f"golden case {name!r} drifted under the {engine} backend — a "
        "simulated-time output moved. "
        "If intentional, regenerate: PYTHONPATH=src python -m tests.golden.regen"
    )
