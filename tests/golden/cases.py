"""Golden-case definitions: the exact simulated-time numbers behind the
paper-claim checks, at small scale.

Each case is a zero-argument callable returning a JSON-serialisable value.
``compute_all()`` evaluates every case; ``regen.py`` writes the result to
``golden_values.json`` and ``test_golden.py`` asserts exact equality against
that file.  Timestamps are integer picoseconds and the workloads are seeded,
so equality is exact — any hot-path refactor that moves a calibrated number
by even one picosecond fails these tests loudly.

Regenerate (only when a timing-model change is *intended*):

    PYTHONPATH=src python -m tests.golden.regen
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

import numpy as np

from repro.analysis import measure_point, run_figure3, run_query_profile
from repro.config import GEM5_PLATFORM
from repro.cpu.costmodel import scan_estimate
from repro.dram import DDR3_1600, Agent, MemoryController, MemRequest
from repro.dram.geometry import DRAMGeometry
from repro.dram.iobuffer import IOBuffer
from repro.sim.trace import attach_trace
from repro.system import Machine
from repro.tpch import generate
from repro.workloads import uniform_column

GOLDEN_ROWS = 1 << 14


def fig3_small():
    """Figure 3 endpoints + midpoint: the headline speedup numbers."""
    points = run_figure3(num_rows=GOLDEN_ROWS, selectivities=(0.0, 0.5, 1.0))
    return [
        {"selectivity": p.selectivity, "cpu_ps": p.cpu_ps,
         "jafar_ps": p.jafar_ps, "matches": p.matches}
        for p in points
    ]


def fig3_slow_grade():
    """One point on the slowest grade: locks the per-grade timing tables."""
    config = GEM5_PLATFORM.with_(dram_grade="DDR3-1066G")
    p = measure_point(0.5, GOLDEN_ROWS, config)
    return {"cpu_ps": p.cpu_ps, "jafar_ps": p.jafar_ps, "matches": p.matches}


def fig3_predicated():
    """The predicated CPU kernel: locks the branch-free cost path."""
    p = measure_point(0.25, GOLDEN_ROWS, kernel="predicated")
    return {"cpu_ps": p.cpu_ps, "jafar_ps": p.jafar_ps, "matches": p.matches}


def fig4_q6():
    """One Table-of-Figure-4 bar at tiny scale: locks the TPC-H path."""
    data = generate(scale=0.001, seed=1)
    point = run_query_profile("Q6", data)
    return {
        "mean_idle_cycles": point.mean_idle_cycles,
        "reads": point.profile.reads,
        "writes": point.profile.writes,
    }


def _small_controller(policy: str = "fr-fcfs",
                      page_policy: str = "open") -> MemoryController:
    geometry = DRAMGeometry(channels=1, dimms_per_channel=1, ranks_per_dimm=2,
                            banks_per_rank=8, row_bytes=8192, rows_per_bank=64)
    return MemoryController(DDR3_1600, geometry, policy=policy,
                            page_policy=page_policy)


def controller_stream():
    """A mixed row-hit/row-miss/bank-conflict read stream, FCFS."""
    mc = _small_controller()
    # Walk two rows of bank 0, hop banks, then revisit — exercises PRE/ACT,
    # tRRD/tFAW spacing, and the channel bus serialisation.
    addrs = ([64 * k for k in range(8)]
             + [8192 + 64 * k for k in range(4)]
             + [n * 8192 * 64 for n in range(1, 6)]
             + [0, 8192, 64])
    done = mc.stream(addrs, nbytes=64, start_ps=1000, gap_ps=500)
    mc.finish()
    return {
        "finish_ps": [c.finish_ps for c in done],
        "issue_ps": [c.issue_ps for c in done],
        "row_hits": sum(c.row_hits for c in done),
        "row_misses": sum(c.row_misses for c in done),
        "read_busy_ps": mc.counters.read_queue.busy_ps,
    }


def controller_batch_frfcfs():
    """A reordered window under FR-FCFS, including posted writes."""
    mc = _small_controller()
    # Open a row first so the window has genuine hits to promote.
    mc.submit(MemRequest(0, 64, False, 0, Agent.CPU))
    window = [
        MemRequest(3 * 8192 * 64, 64, False, 100, Agent.CPU),   # miss
        MemRequest(128, 64, False, 200, Agent.CPU),             # hit
        MemRequest(2 * 8192 * 64, 64, True, 300, Agent.JAFAR),  # write miss
        MemRequest(192, 64, False, 400, Agent.CPU),             # hit
    ]
    done = mc.submit_batch(window)
    mc.finish()
    return {
        "finish_ps": [c.finish_ps for c in done],
        "service_order_hits": [c.row_hits for c in done],
        "write_busy_ps": mc.counters.write_queue.busy_ps,
    }


def controller_closed_page():
    """The same stream under the closed-page (auto-precharge) policy."""
    mc = _small_controller(page_policy="closed")
    addrs = [64 * k for k in range(6)] + [8192, 0]
    done = mc.stream(addrs, nbytes=64, start_ps=0, gap_ps=0)
    return {"finish_ps": [c.finish_ps for c in done],
            "row_hits": sum(c.row_hits for c in done)}


def jafar_select_digest():
    """A full device run: duration, traffic, and a hash of the exact DRAM
    command stream (issue times included) it generated."""
    machine = Machine(GEM5_PLATFORM)
    trace = attach_trace(machine)
    values = uniform_column(GOLDEN_ROWS, seed=7)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(max(GOLDEN_ROWS // 8, 64), dimm=0, pinned=True)
    result = machine.driver.select_column(col.vaddr, GOLDEN_ROWS,
                                          0, 500_000, out.vaddr)
    stream = "\n".join(json.dumps(asdict(c), sort_keys=True)
                       for c in trace.commands)
    return {
        "duration_ps": result.duration_ps,
        "matches": result.matches,
        "bursts_read": sum(r.bursts_read for r in result.per_page),
        "writeback_bursts": sum(r.writeback_bursts for r in result.per_page),
        "commands": len(trace.commands),
        "command_stream_sha256": hashlib.sha256(stream.encode()).hexdigest(),
    }


def jafar_small_buffer():
    """A 64-bit output buffer: locks the writeback-drain scheduling."""
    config = GEM5_PLATFORM.with_(
        jafar_cost=GEM5_PLATFORM.jafar_cost.__class__(output_buffer_bits=64))
    machine = Machine(config)
    values = uniform_column(1 << 12, seed=3)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(max(values.size // 8, 64), dimm=0, pinned=True)
    result = machine.driver.select_column(col.vaddr, values.size,
                                          0, 250_000, out.vaddr)
    return {"duration_ps": result.duration_ps,
            "writeback_bursts": sum(r.writeback_bursts
                                    for r in result.per_page)}


def scan_estimates():
    """Closed-form cost-model values across kernels and selectivities."""
    out = []
    for kernel in ("branchy", "predicated"):
        for sel in (0.0, 0.3, 1.0):
            est = scan_estimate(GEM5_PLATFORM, DDR3_1600, nrows=100_000,
                                word_bytes=8, selectivity=sel, kernel=kernel)
            out.append({"kernel": kernel, "selectivity": sel,
                        "total_ps": est.total_ps,
                        "compute_ps": est.compute_ps,
                        "memory_ps": est.memory_ps,
                        "bound": est.bound})
    return out


def beat_schedules():
    """IO-buffer beat timestamps: locks the 8n-prefetch stream timing."""
    buf = IOBuffer(DDR3_1600)
    return {
        "at_0": list(buf.beat_schedule(0).beat_ps),
        "at_12345": list(buf.beat_schedule(12345).beat_ps),
        "words_by": [buf.words_available_by(1000, 1000 + d)
                     for d in (0, 625, 1250, 5000, 50_000)],
    }


def cpu_random_phase():
    """Dependent random reads through the cache hierarchy."""
    machine = Machine(GEM5_PLATFORM)
    rng = np.random.default_rng(11)
    addrs = rng.integers(0, 1 << 20, size=512, dtype=np.int64) * 64 % (1 << 22)
    stats = machine.core.random_read_phase(addrs, cycles_per_access=4.0)
    return {"end_ps": stats.end_ps, "lines_read": stats.lines_read,
            "lines_written": stats.lines_written,
            "stall_ps": stats.stall_ps}


#: name -> case callable; keys are the golden-file keys.
CASES = {
    "fig3_small": fig3_small,
    "fig3_slow_grade": fig3_slow_grade,
    "fig3_predicated": fig3_predicated,
    "fig4_q6": fig4_q6,
    "controller_stream": controller_stream,
    "controller_batch_frfcfs": controller_batch_frfcfs,
    "controller_closed_page": controller_closed_page,
    "jafar_select_digest": jafar_select_digest,
    "jafar_small_buffer": jafar_small_buffer,
    "scan_estimates": scan_estimates,
    "beat_schedules": beat_schedules,
    "cpu_random_phase": cpu_random_phase,
}


def compute_all() -> dict:
    return {name: case() for name, case in sorted(CASES.items())}
