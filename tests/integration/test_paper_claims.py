"""The paper's quantitative claims, as a test suite.

Each test checks one statement from the paper against the simulation at
reduced scale (the benchmarks re-verify at full scale).  These are the
reproduction's acceptance tests.
"""

import pytest

from repro.analysis import (
    average_idle_cycles,
    check_figure3_shape,
    check_figure4_shape,
    run_figure3,
    run_figure4,
)
from repro.config import GEM5_PLATFORM
from repro.dram import speed_grade
from repro.jafar import modeled_words_per_cycle
from repro.system import Machine, gap_budget


class TestFigure3Claims:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure3(num_rows=1 << 16,
                           selectivities=(0.0, 0.25, 0.5, 0.75, 1.0))

    def test_all_shape_checks_pass(self, points):
        checks = check_figure3_shape(points)
        assert all(checks.values()), checks

    def test_speedup_5x_at_zero_selectivity(self, points):
        assert points[0].speedup == pytest.approx(5.0, abs=1.0)

    def test_speedup_9x_at_full_selectivity(self, points):
        assert points[-1].speedup == pytest.approx(9.0, abs=1.5)

    def test_gradual_increase(self, points):
        speedups = [p.speedup for p in points]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_jafar_constant_execution_time(self, points):
        """'JAFAR has constant execution time irrespective of the query
        selectivity' (§3.2)."""
        times = [p.jafar_ps for p in points]
        assert max(times) <= min(times) * 1.01


class TestFigure4Claims:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure4(scale=0.002)

    def test_idle_periods_in_200_to_800_band(self, points):
        checks = check_figure4_shape(points)
        assert checks["range_200_800"], [
            (p.query, p.mean_idle_cycles) for p in points]

    def test_average_near_500_cycles(self, points):
        assert average_idle_cycles(points) == pytest.approx(500, abs=200)

    def test_4kb_per_idle_period_arithmetic(self, points):
        """'JAFAR can process 500/4 = 125 32-byte data blocks, or a total of
        4KB of data, per idle period' (§3.3)."""
        machine = Machine(GEM5_PLATFORM)
        budget = gap_budget(500.0, machine.timings)
        assert budget.blocks_per_gap == 125.0
        assert budget.bytes_per_gap == 4000.0

    def test_half_row_per_interruption(self, points):
        """'JAFAR would on average process half of a DRAM-activated row
        before an interruption' (§3.3, 8 KB rows)."""
        avg = average_idle_cycles(points)
        machine = Machine(GEM5_PLATFORM)
        budget = gap_budget(avg, machine.timings, row_bytes=8192)
        assert budget.fraction_of_row == pytest.approx(0.5, abs=0.25)


class TestInlineTimingClaims:
    """§2.2's in-text numbers."""

    def test_cas_latency_about_13ns(self):
        timings = speed_grade(GEM5_PLATFORM.dram_grade)
        assert timings.cl_ps / 1000 == pytest.approx(13.0, abs=0.5)

    def test_jafar_clock_about_2ghz(self):
        timings = speed_grade(GEM5_PLATFORM.dram_grade)
        assert timings.jafar_clock().freq_hz / 1e9 == pytest.approx(2.1, abs=0.2)

    def test_eight_words_in_about_4ns(self):
        timings = speed_grade(GEM5_PLATFORM.dram_grade)
        wpc = modeled_words_per_cycle()
        process_ns = 8 / wpc * timings.jafar_clock().period_ps / 1000
        assert process_ns == pytest.approx(4.0, abs=0.5)

    def test_9_of_13_ns_waiting(self):
        timings = speed_grade(GEM5_PLATFORM.dram_grade)
        cas_ns = timings.cl_ps / 1000
        process_ns = 8 * timings.jafar_clock().period_ps / 1000
        assert cas_ns - process_ns == pytest.approx(9.0, abs=1.0)

    def test_accelerated_region_dominates(self):
        """§3.1: '93% of the total execution time is spent inside the
        accelerated region' — device time must dominate driver overheads."""
        import numpy as np

        machine = Machine(GEM5_PLATFORM)
        n = 1 << 18
        values = np.arange(n, dtype=np.int64)
        col = machine.alloc_array(values, dimm=0, pinned=True)
        out = machine.alloc_zeros(n // 8, dimm=0, pinned=True)
        before = machine.core.now_ps
        result = machine.driver.select_column(col.vaddr, n, 0, 100, out.vaddr)
        total = machine.core.now_ps - before
        device = sum(r.duration_ps for r in result.per_page)
        assert device / total >= 0.85
