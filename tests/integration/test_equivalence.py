"""End-to-end equivalence: every select path computes the same relation.

The load-bearing invariant of the whole reproduction: the CPU branchy
kernel, the CPU predicated kernel, the single-DIMM JAFAR path, and the
multi-DIMM interleaved JAFAR path must agree bit-for-bit on arbitrary data
and predicates (hypothesis-driven), and must agree with plain NumPy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GEM5_PLATFORM, JafarCostModel
from repro.cpu import branchy_select, predicated_select
from repro.dram import DDR3_1600, DRAMGeometry, MemoryController
from repro.jafar import JafarDevice, positions_from_mask, select_interleaved
from repro.mem import PhysicalMemory
from repro.system import Machine


@st.composite
def column_and_range(draw):
    n = draw(st.integers(min_value=1, max_value=600))
    values = draw(st.lists(st.integers(-10**6, 10**6), min_size=n, max_size=n))
    a = draw(st.integers(-10**6, 10**6))
    b = draw(st.integers(-10**6, 10**6))
    return np.array(values, dtype=np.int64), min(a, b), max(a, b)


@settings(max_examples=25, deadline=None)
@given(column_and_range())
def test_cpu_kernels_and_jafar_agree(case):
    values, low, high = case
    expected = np.flatnonzero((values >= low) & (values <= high))

    machine = Machine(GEM5_PLATFORM)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(max(values.size // 8, 1) + 8, dimm=0,
                              pinned=True)
    driver_result = machine.driver.select_column(col.vaddr, values.size,
                                                 low, high, out.vaddr)
    buf = machine.read_array(out, -(-values.size // 8), dtype=np.uint8)
    jafar_positions = positions_from_mask(buf, values.size)

    cpu_machine = Machine(GEM5_PLATFORM)
    cpu_col = cpu_machine.alloc_array(values, dimm=0)
    paddr = cpu_machine.vm.translate(cpu_col.vaddr)
    branchy = branchy_select(cpu_machine.core, values, paddr, low, high)
    predicated = predicated_select(cpu_machine.core, values, paddr, low, high)

    assert (jafar_positions == expected).all()
    assert (branchy.positions == expected).all()
    assert (predicated.positions == expected).all()
    assert driver_result.matches == expected.size


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=16, max_value=400),
       st.integers(min_value=0, max_value=100))
def test_interleaved_multidimm_agrees_with_numpy(n, threshold):
    geometry = DRAMGeometry(channels=2, dimms_per_channel=1,
                            ranks_per_dimm=1, banks_per_rank=8,
                            row_bytes=8192, rows_per_bank=64,
                            interleave_bytes=64)
    mc = MemoryController(DDR3_1600, geometry, refresh_enabled=False)
    memory = PhysicalMemory(geometry.total_bytes)
    devices = [
        JafarDevice(DDR3_1600, mc.mapping, channel.index, dimm, memory,
                    JafarCostModel())
        for channel in mc.channels for dimm in channel.dimms
    ]
    rng = np.random.default_rng(n * 131 + threshold)
    values = rng.integers(0, 100, n, dtype=np.int64)
    memory.write_words(0, values)
    out_addr = 512 * 1024
    result = select_interleaved(devices, 0, n, 0, threshold, out_addr, 0)
    expected = np.flatnonzero(values <= threshold)
    got = positions_from_mask(memory.read(out_addr, -(-n // 8)), n)
    assert (got == expected).all()
    assert result.matches == expected.size


def test_full_stack_query_equivalence_across_modes():
    """The same TPC-H query on four engine configurations, one answer."""
    from repro.columnstore import ExecutionContext, StorageManager
    from repro.config import XEON_PLATFORM
    from repro.tpch import PROFILED_QUERIES, generate

    data = generate(scale=0.001, seed=21)
    reference = PROFILED_QUERIES["Q6"].reference(data)
    for use_ndp in (False, True):
        for kernel in ("branchy", "predicated"):
            machine = Machine(XEON_PLATFORM)
            storage = StorageManager(machine, default_dimm=None)
            for table in data.tables():
                storage.load_table(table)
            ctx = ExecutionContext(machine, storage, use_ndp=use_ndp,
                                   cpu_kernel=kernel)
            result = PROFILED_QUERIES["Q6"].run(ctx, data.catalog())
            assert result.rows == reference, (use_ndp, kernel)


def test_memory_contents_survive_jafar_runs():
    """JAFAR must not corrupt the column it scans."""
    values = np.arange(20_000, dtype=np.int64) * 3
    machine = Machine(GEM5_PLATFORM)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(values.size // 8 + 8, dimm=0, pinned=True)
    machine.driver.select_column(col.vaddr, values.size, 0, 30_000, out.vaddr)
    machine.driver.select_column(col.vaddr, values.size, 100, 999, out.vaddr)
    assert (machine.read_array(col, values.nbytes) == values).all()


def test_driver_time_always_exceeds_device_time():
    """Software overheads (MMIO, ownership, polling) are never free."""
    values = np.arange(8192, dtype=np.int64)
    machine = Machine(GEM5_PLATFORM)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(1024 + 8, dimm=0, pinned=True)
    before = machine.core.now_ps
    result = machine.driver.select_column(col.vaddr, values.size, 0, 100,
                                          out.vaddr)
    cpu_elapsed = machine.core.now_ps - before
    device_total = sum(r.duration_ps for r in result.per_page)
    assert cpu_elapsed > device_total
