"""Cross-validation of the two model fidelities (DESIGN.md §4).

The streaming-analytic closed forms in :mod:`repro.cpu.costmodel` and
:mod:`repro.columnstore.optimizer` are derived from the same constants as
the transaction-level simulation; they must agree on regular workloads to
within a modest tolerance, or one of them has drifted.
"""

import numpy as np
import pytest

from repro.columnstore import estimate_jafar_ps
from repro.columnstore.context import ExecutionContext
from repro.columnstore.storage import StorageManager
from repro.config import GEM5_PLATFORM
from repro.cpu import branchy_select, line_service_ps, predicated_select, scan_estimate
from repro.dram import speed_grade
from repro.system import Machine
from repro.workloads import bounds_for_selectivity, uniform_column

N = 1 << 17  # 128K rows keeps the cross-check fast but steady-state


@pytest.mark.parametrize("selectivity", [0.0, 0.3, 0.7, 1.0])
def test_analytic_vs_simulated_branchy_scan(selectivity):
    values = uniform_column(N, seed=10)
    low, high = bounds_for_selectivity(selectivity)

    machine = Machine(GEM5_PLATFORM)
    mapping = machine.alloc_array(values, dimm=0)
    paddr = machine.vm.translate(mapping.vaddr)
    simulated = branchy_select(machine.core, values, paddr, low, high).time_ps

    analytic = scan_estimate(GEM5_PLATFORM,
                             speed_grade(GEM5_PLATFORM.dram_grade),
                             N, 8, selectivity, kernel="branchy").total_ps
    assert analytic == pytest.approx(simulated, rel=0.25)


def test_analytic_vs_simulated_predicated_scan():
    values = uniform_column(N, seed=11)
    low, high = bounds_for_selectivity(0.5)
    machine = Machine(GEM5_PLATFORM)
    mapping = machine.alloc_array(values, dimm=0)
    paddr = machine.vm.translate(mapping.vaddr)
    simulated = predicated_select(machine.core, values, paddr, low, high).time_ps
    analytic = scan_estimate(GEM5_PLATFORM,
                             speed_grade(GEM5_PLATFORM.dram_grade),
                             N, 8, 0.5, kernel="predicated").total_ps
    assert analytic == pytest.approx(simulated, rel=0.25)


def test_analytic_vs_simulated_jafar_run():
    values = uniform_column(N, seed=12)
    machine = Machine(GEM5_PLATFORM)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(N // 8, dimm=0, pinned=True)
    simulated = machine.driver.select_column(col.vaddr, N, 0, 500_000,
                                             out.vaddr).duration_ps
    storage = StorageManager(machine)
    ctx = ExecutionContext(machine, storage)
    analytic = estimate_jafar_ps(ctx, N)
    assert analytic == pytest.approx(simulated, rel=0.25)


def test_line_service_matches_streamed_controller():
    """The memory closed form vs a raw controller streaming sweep."""
    machine = Machine(GEM5_PLATFORM)
    timings = machine.timings
    nlines = 4096
    results = machine.controller.stream(
        range(0, nlines * 64, 64), nbytes=64, start_ps=0)
    simulated_per_line = (results[-1].finish_ps - results[0].finish_ps) / (
        nlines - 1)
    analytic = line_service_ps(timings, 64, GEM5_PLATFORM.row_bytes,
                               refresh=True)
    assert analytic == pytest.approx(simulated_per_line, rel=0.1)


def test_speedup_prediction_from_closed_forms():
    """The closed forms alone predict the paper's 5x-9x window."""
    timings = speed_grade(GEM5_PLATFORM.dram_grade)
    machine = Machine(GEM5_PLATFORM)
    storage = StorageManager(machine)
    ctx = ExecutionContext(machine, storage)
    jafar = estimate_jafar_ps(ctx, 4_000_000)
    low = scan_estimate(GEM5_PLATFORM, timings, 4_000_000, 8, 0.0).total_ps
    high = scan_estimate(GEM5_PLATFORM, timings, 4_000_000, 8, 1.0).total_ps
    assert 3.5 <= low / jafar <= 6.5
    assert 7.0 <= high / jafar <= 11.0
