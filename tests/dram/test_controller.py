"""Tests for the memory controller: service timing, counters, scheduling."""

import pytest

from repro.dram import (
    DDR3_1600,
    Agent,
    DRAMGeometry,
    MemoryController,
    MemRequest,
)
from repro.errors import DRAMError

T = DDR3_1600
GEO = DRAMGeometry(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                   banks_per_rank=8, row_bytes=8192, rows_per_bank=128)


def make_mc(**kwargs) -> MemoryController:
    defaults = dict(timings=T, geometry=GEO, refresh_enabled=False)
    defaults.update(kwargs)
    return MemoryController(**defaults)


def ps(cycles):
    return T.cycles_to_ps(cycles)


def test_single_read_latency_is_trcd_cl_burst():
    mc = make_mc()
    done = mc.submit(MemRequest(addr=0, nbytes=64, is_write=False, arrival_ps=0))
    assert done.latency_ps == ps(T.trcd + T.cl + T.burst_cycles)
    assert done.row_misses == 1 and done.row_hits == 0


def test_sequential_stream_hits_row_buffer():
    mc = make_mc()
    results = mc.stream(range(0, 8192, 64), nbytes=64, start_ps=0)
    hits = sum(r.row_hits for r in results)
    misses = sum(r.row_misses for r in results)
    assert misses == 1  # only the first access opens the row
    assert hits == 127


def test_streaming_throughput_is_bus_bound():
    """A long row-hit stream should sustain one burst per tCCD (= 4 cycles)."""
    mc = make_mc()
    results = mc.stream(range(0, 8192, 64), nbytes=64, start_ps=0)
    spacing = results[-1].finish_ps - results[-2].finish_ps
    assert spacing == ps(T.tccd)


def test_multi_burst_request_is_split():
    mc = make_mc()
    done = mc.submit(MemRequest(addr=0, nbytes=256, is_write=False, arrival_ps=0))
    assert done.row_hits + done.row_misses == 4
    # 4 bursts back-to-back: last data ends 3*tCCD after the first burst's end.
    assert done.finish_ps == ps(T.trcd + T.cl + T.burst_cycles + 3 * T.tccd)


def test_counters_track_reads_and_writes():
    mc = make_mc()
    mc.submit(MemRequest(0, 64, False, 0))
    mc.submit(MemRequest(64, 64, True, ps(100)))
    mc.finish()
    counters = mc.counters
    assert counters.reads.value == 1
    assert counters.writes.value == 1
    assert counters.rc_busy_cycles() > 0
    assert counters.wc_busy_cycles() > 0


def test_idle_gap_appears_between_spaced_requests():
    mc = make_mc()
    mc.submit(MemRequest(0, 64, False, 0))
    mc.submit(MemRequest(64, 64, False, ps(500)))
    mc.finish()
    gaps = mc.counters.combined.idle_gaps_ps()
    assert gaps.count == 1
    assert gaps.mean > ps(400)


def test_mean_idle_period_formula():
    """The §3.3 estimate: (total - RC_busy - WC_busy) / (#reads + #writes)."""
    mc = make_mc()
    mc.submit(MemRequest(0, 64, False, 0))
    mc.submit(MemRequest(64, 64, False, ps(1000)))
    mc.finish()
    total = 2000.0
    expected = (total - mc.counters.rc_busy_cycles()) / 2
    assert mc.counters.mean_idle_period_cycles(total) == pytest.approx(expected)


def test_submit_requires_ordered_arrivals():
    mc = make_mc()
    mc.submit(MemRequest(0, 64, False, ps(100)))
    with pytest.raises(DRAMError, match="non-decreasing"):
        mc.submit(MemRequest(64, 64, False, ps(50)))


def test_frfcfs_prefers_row_hits():
    mc = make_mc(policy="fr-fcfs")
    # Open row 0 of bank 0.
    mc.submit(MemRequest(0, 64, False, 0))
    row_bytes = GEO.row_bytes
    window = [
        MemRequest(5 * row_bytes, 64, False, ps(100)),  # miss (row 5)
        MemRequest(64, 64, False, ps(101)),             # hit (row 0)
    ]
    results = mc.submit_batch(window)
    # Results return in request order, but the hit was serviced first.
    assert results[1].first_data_ps < results[0].first_data_ps


def test_fcfs_keeps_arrival_order():
    mc = make_mc(policy="fcfs")
    mc.submit(MemRequest(0, 64, False, 0))
    row_bytes = GEO.row_bytes
    window = [
        MemRequest(5 * row_bytes, 64, False, ps(100)),
        MemRequest(64, 64, False, ps(101)),
    ]
    results = mc.submit_batch(window)
    assert results[0].first_data_ps < results[1].first_data_ps


def test_batch_returns_results_aligned_with_input_order():
    mc = make_mc()
    window = [MemRequest(i * 64, 64, False, ps(10)) for i in range(8)]
    results = mc.submit_batch(window)
    assert [r.request.req_id for r in results] == [w.req_id for w in window]


def test_empty_batch_is_noop():
    assert make_mc().submit_batch([]) == []


def test_rank_at_and_dimm_at():
    geometry = DRAMGeometry(channels=1, dimms_per_channel=2, ranks_per_dimm=2,
                            banks_per_rank=8, row_bytes=8192, rows_per_bank=64)
    mc = MemoryController(T, geometry, refresh_enabled=False)
    assert mc.rank_at(0).index == 0
    assert mc.dimm_at(geometry.dimm_bytes).index == 1
    second_rank_addr = geometry.rank_bytes
    assert mc.rank_at(second_rank_addr).index == 1


def test_jafar_agent_requests_bypass_mpr_block():
    mc = make_mc()
    rank = mc.rank_at(0)
    rank.mode_registers.enable_mpr()
    done = mc.submit(MemRequest(0, 64, False, 0, agent=Agent.JAFAR))
    assert done.finish_ps > 0


class TestPagePolicy:
    def test_closed_page_never_hits_rows(self):
        mc = make_mc(page_policy="closed")
        results = mc.stream(range(0, 8192, 64), nbytes=64, start_ps=0)
        assert sum(r.row_hits for r in results) == 0

    def test_closed_page_slower_on_sequential_streams(self):
        open_mc = make_mc(page_policy="open")
        closed_mc = make_mc(page_policy="closed")
        open_end = open_mc.stream(range(0, 8192, 64), 64, 0)[-1].finish_ps
        closed_end = closed_mc.stream(range(0, 8192, 64), 64, 0)[-1].finish_ps
        assert closed_end > open_end

    def test_closed_page_competitive_on_row_conflict_patterns(self):
        """Alternating rows in one bank: open-page pays PRE on the critical
        path each time; closed-page precharges eagerly off-path."""
        def conflict_addrs():
            return [((k % 2) * GEO.row_bytes) for k in range(64)]
        open_mc = make_mc(page_policy="open")
        closed_mc = make_mc(page_policy="closed")
        open_end = open_mc.stream(conflict_addrs(), 64, 0)[-1].finish_ps
        closed_end = closed_mc.stream(conflict_addrs(), 64, 0)[-1].finish_ps
        assert closed_end <= open_end

    def test_invalid_policy_rejected(self):
        with pytest.raises(DRAMError, match="page policy"):
            make_mc(page_policy="adaptive")
