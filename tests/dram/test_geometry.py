"""Tests for DRAM geometry and address mapping, incl. property-based
encode/decode round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DDR3_1600, AddressMapping, DRAMGeometry
from repro.errors import ConfigError, DRAMAddressError

SMALL = DRAMGeometry(channels=2, dimms_per_channel=2, ranks_per_dimm=2,
                     banks_per_rank=8, row_bytes=8192, rows_per_bank=64)


def make_mapping(**overrides) -> AddressMapping:
    geometry = DRAMGeometry(**{**dict(
        channels=2, dimms_per_channel=2, ranks_per_dimm=2,
        banks_per_rank=8, row_bytes=8192, rows_per_bank=64,
    ), **overrides})
    return AddressMapping(geometry, DDR3_1600)


def test_total_capacity():
    assert SMALL.total_bytes == 2 * 2 * 2 * 8 * 8192 * 64
    assert SMALL.total_ranks == 8


def test_sequential_addresses_walk_one_row_first():
    """Fill-first mapping: a 64B stream stays in one row for 8 KiB."""
    mapping = make_mapping()
    locs = [mapping.decode(addr) for addr in range(0, 8192, 64)]
    assert {(l.channel, l.dimm, l.rank, l.bank, l.row) for l in locs} == {(0, 0, 0, 0, 0)}
    assert [l.column for l in locs] == list(range(128))


def test_row_boundary_crossing():
    mapping = make_mapping()
    last_of_row0 = mapping.decode(8191)
    first_of_row1 = mapping.decode(8192)
    assert last_of_row0.row == 0
    assert first_of_row1.row == 1
    assert first_of_row1.column == 0


def test_channel_interleaving_rotates_at_granularity():
    mapping = make_mapping(interleave_bytes=64)
    assert mapping.decode(0).channel == 0
    assert mapping.decode(64).channel == 1
    assert mapping.decode(128).channel == 0


def test_bank_rotation_mapping():
    mapping = make_mapping(bank_rotate_bytes=64)
    banks = [mapping.decode(addr).bank for addr in range(0, 64 * 10, 64)]
    assert banks == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]


def test_out_of_range_address_raises():
    mapping = make_mapping()
    with pytest.raises(DRAMAddressError):
        mapping.decode(mapping.geometry.total_bytes)
    with pytest.raises(DRAMAddressError):
        mapping.decode(-1)


def test_bursts_for_spans():
    mapping = make_mapping()
    assert mapping.bursts_for(0, 64) == [0]
    assert mapping.bursts_for(0, 65) == [0, 64]
    assert mapping.bursts_for(60, 8) == [0, 64]
    with pytest.raises(DRAMAddressError):
        mapping.bursts_for(0, 0)


def test_non_power_of_two_geometry_rejected():
    with pytest.raises(ConfigError):
        DRAMGeometry(banks_per_rank=6)
    with pytest.raises(ConfigError):
        DRAMGeometry(interleave_bytes=48)
    with pytest.raises(ConfigError):
        DRAMGeometry(bank_rotate_bytes=8192, row_bytes=8192)


@settings(max_examples=200, deadline=None)
@given(addr=st.integers(min_value=0, max_value=SMALL.total_bytes - 1))
def test_decode_encode_round_trip_plain(addr):
    mapping = AddressMapping(SMALL, DDR3_1600)
    assert mapping.encode(mapping.decode(addr)) == addr


@settings(max_examples=200, deadline=None)
@given(addr=st.integers(min_value=0, max_value=SMALL.total_bytes - 1))
def test_decode_encode_round_trip_interleaved(addr):
    geometry = DRAMGeometry(channels=2, dimms_per_channel=2, ranks_per_dimm=2,
                            banks_per_rank=8, row_bytes=8192, rows_per_bank=64,
                            interleave_bytes=64, bank_rotate_bytes=64)
    mapping = AddressMapping(geometry, DDR3_1600)
    assert mapping.encode(mapping.decode(addr)) == addr


@settings(max_examples=100, deadline=None)
@given(addr=st.integers(min_value=0, max_value=SMALL.total_bytes - 1))
def test_decode_fields_in_range(addr):
    mapping = AddressMapping(SMALL, DDR3_1600)
    loc = mapping.decode(addr)
    geometry = mapping.geometry
    assert 0 <= loc.channel < geometry.channels
    assert 0 <= loc.dimm < geometry.dimms_per_channel
    assert 0 <= loc.rank < geometry.ranks_per_dimm
    assert 0 <= loc.bank < geometry.banks_per_rank
    assert 0 <= loc.row < geometry.rows_per_bank
    assert 0 <= loc.column < geometry.columns_per_row(64)
    assert 0 <= loc.offset < 64
