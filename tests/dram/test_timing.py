"""Tests for DDR3 timing parameters and speed grades."""

import pytest

from repro.dram import DDR3_1600, DDR3_2133, SPEED_GRADES, DDR3Timings, speed_grade
from repro.errors import ConfigError


def test_all_grades_registered():
    assert set(SPEED_GRADES) == {
        "DDR3-1066G", "DDR3-1333H", "DDR3-1600K", "DDR3-1866M", "DDR3-2133N",
    }


def test_speed_grade_lookup_and_error():
    assert speed_grade("DDR3-1600K") is DDR3_1600
    with pytest.raises(ConfigError, match="unknown DDR3 speed grade"):
        speed_grade("DDR4-3200")


def test_2133_matches_papers_cited_numbers():
    """§2.2: bus clock ~1 GHz, CAS latency ~13 ns, JAFAR clock ~2 GHz."""
    t = DDR3_2133
    assert t.bus_freq_hz == pytest.approx(1.066e9, rel=0.01)
    assert t.cl_ps == pytest.approx(13_000, rel=0.02)  # ~13 ns
    assert t.jafar_clock().freq_hz == pytest.approx(2.13e9, rel=0.01)


def test_burst_geometry():
    t = DDR3_1600
    assert t.burst_length == 8          # 8n-prefetch
    assert t.burst_cycles == 4          # BL/2 bus cycles on the data bus
    assert t.burst_bytes == 64          # 8 words x 8 bytes


def test_array_clock_is_quarter_of_bus():
    t = DDR3_1600
    assert t.array_clock().freq_hz * 4 == pytest.approx(t.bus_clock().freq_hz, rel=1e-6)


def test_data_rate_names_match():
    assert DDR3_1600.data_rate_mts == pytest.approx(1600, rel=0.01)
    assert DDR3_2133.data_rate_mts == pytest.approx(2133, rel=0.01)


def test_peak_bandwidth():
    # DDR3-1600: 800 MHz bus x 16 B per cycle = 12.8 GB/s.
    assert DDR3_1600.peak_bandwidth_bytes_per_s() == pytest.approx(12.8e9, rel=0.01)


def test_cycle_conversions_round_trip():
    t = DDR3_1600
    assert t.cycles_to_ps(4) == 5000
    assert t.ps_to_cycles(5000) == pytest.approx(4.0)


def test_trc_is_tras_plus_trp():
    t = DDR3_1600
    assert t.trc_ps == t.cycles_to_ps(t.tras + t.trp)


@pytest.mark.parametrize("kwargs,match", [
    (dict(tck_ps=0), "tCK"),
    (dict(cl=0), "cl"),
    (dict(burst_length=16), "burst length"),
    (dict(tras=5, trcd=11), "tRAS"),
])
def test_invalid_parameters_rejected(kwargs, match):
    base = dict(name="bad", tck_ps=1250, cl=11, trcd=11, trp=11, tras=28)
    base.update(kwargs)
    with pytest.raises(ConfigError, match=match):
        DDR3Timings(**base)
