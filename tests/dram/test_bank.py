"""Tests for the bank state machine's timing rules (§2.1's CL/tRCD/tRP/tRAS)."""

import pytest

from repro.dram import DDR3_1600, Bank
from repro.errors import DRAMTimingError

T = DDR3_1600


def ps(cycles):
    return T.cycles_to_ps(cycles)


def test_closed_bank_read_pays_trcd_plus_cl():
    bank = Bank(T)
    timing = bank.access(row=5, at_ps=0, is_write=False)
    assert not timing.row_hit
    assert timing.activated_row
    assert timing.cas_ps == ps(T.trcd)
    assert timing.data_start_ps == ps(T.trcd + T.cl)
    assert timing.data_end_ps == ps(T.trcd + T.cl + T.burst_cycles)


def test_row_hit_read_pays_only_cl():
    bank = Bank(T)
    bank.access(row=5, at_ps=0, is_write=False)
    start = ps(100)
    timing = bank.access(row=5, at_ps=start, is_write=False)
    assert timing.row_hit
    assert timing.cas_ps == start
    assert timing.data_start_ps == start + ps(T.cl)


def test_row_conflict_pays_pre_act_cas():
    bank = Bank(T)
    bank.access(row=5, at_ps=0, is_write=False)
    start = ps(100)  # well past tRAS
    timing = bank.access(row=9, at_ps=start, is_write=False)
    assert not timing.row_hit
    # PRE at start, ACT at start+tRP, CAS at start+tRP+tRCD.
    assert timing.cas_ps == start + ps(T.trp + T.trcd)
    assert bank.row_misses == 1


def test_tras_delays_early_precharge():
    bank = Bank(T)
    bank.access(row=5, at_ps=0, is_write=False)
    # Conflict immediately: the PRE may not issue before ACT + tRAS.
    timing = bank.access(row=9, at_ps=ps(1), is_write=False)
    assert timing.cas_ps >= ps(T.tras + T.trp + T.trcd)


def test_back_to_back_hits_spaced_by_tccd():
    bank = Bank(T)
    first = bank.access(row=5, at_ps=0, is_write=False)
    second = bank.access(row=5, at_ps=0, is_write=False)
    assert second.cas_ps - first.cas_ps == ps(T.tccd)


def test_bus_constraint_delays_cas():
    bank = Bank(T)
    bus_free = ps(1000)
    timing = bank.access(row=5, at_ps=0, is_write=False, bus_free_ps=bus_free)
    # Data may not start before the bus frees.
    assert timing.data_start_ps >= bus_free


def test_write_uses_cwl_and_delays_precharge():
    bank = Bank(T)
    timing = bank.access(row=5, at_ps=0, is_write=True)
    assert timing.data_start_ps == timing.cas_ps + ps(T.cwl)
    # Next conflicting access must respect tWR after write data.
    conflict = bank.access(row=9, at_ps=timing.data_end_ps, is_write=False)
    assert conflict.cas_ps >= timing.data_end_ps + ps(T.twr + T.trp + T.trcd)


def test_double_activation_raises():
    bank = Bank(T)
    bank.activate(3, 0)
    with pytest.raises(DRAMTimingError):
        bank.activate(4, ps(100))


def test_block_until_delays_everything():
    bank = Bank(T)
    bank.block_until(ps(50))
    timing = bank.access(row=1, at_ps=0, is_write=False)
    assert timing.cas_ps >= ps(50 + T.trcd)


def test_hit_miss_statistics():
    bank = Bank(T)
    bank.access(row=1, at_ps=0, is_write=False)
    bank.access(row=1, at_ps=ps(50), is_write=False)
    bank.access(row=2, at_ps=ps(100), is_write=False)
    assert bank.row_hits == 1
    assert bank.row_misses == 1
    assert bank.activations == 2
