"""Tests for rank composition, refresh settlement, and MR3/MPR blocking."""

import pytest

from repro.dram import DDR3_1600, Agent, Rank
from repro.dram.mode_registers import MR3_MPR_ENABLE_BIT, ModeRegisterFile
from repro.errors import DRAMError, DRAMOwnershipError

T = DDR3_1600


def make_rank(refresh=False):
    return Rank(T, banks=8, refresh_enabled=refresh)


class TestModeRegisters:
    def test_load_and_read(self):
        mrf = ModeRegisterFile()
        mrf.load(1, 0x44)
        assert mrf.read(1) == 0x44

    def test_invalid_register_raises(self):
        mrf = ModeRegisterFile()
        with pytest.raises(DRAMError):
            mrf.load(4, 0)
        with pytest.raises(DRAMError):
            mrf.read(-1)

    def test_out_of_range_value_raises(self):
        with pytest.raises(DRAMError):
            ModeRegisterFile().load(0, 1 << 16)

    def test_mpr_bit_controls_blocking_flag(self):
        mrf = ModeRegisterFile()
        assert not mrf.mpr_enabled
        mrf.enable_mpr()
        assert mrf.mpr_enabled
        assert mrf.read(3) & MR3_MPR_ENABLE_BIT
        mrf.disable_mpr()
        assert not mrf.mpr_enabled

    def test_mpr_survives_other_mr3_bits(self):
        mrf = ModeRegisterFile()
        mrf.load(3, 0b1000)
        mrf.enable_mpr()
        assert mrf.read(3) == 0b1100


class TestRankAccess:
    def test_host_blocked_while_mpr_engaged(self):
        """§2.2: with MPR enabled the controller cannot issue ordinary
        reads/writes — this is the JAFAR ownership handoff."""
        rank = make_rank()
        rank.mode_registers.enable_mpr()
        with pytest.raises(DRAMOwnershipError):
            rank.access(bank=0, row=0, at_ps=0, is_write=False, agent=Agent.CPU)

    def test_jafar_allowed_while_mpr_engaged(self):
        rank = make_rank()
        rank.mode_registers.enable_mpr()
        timing = rank.access(bank=0, row=0, at_ps=0, is_write=False,
                             agent=Agent.JAFAR)
        assert timing.data_end_ps > 0

    def test_host_allowed_after_release(self):
        rank = make_rank()
        rank.mode_registers.enable_mpr()
        rank.mode_registers.disable_mpr()
        timing = rank.access(bank=0, row=0, at_ps=0, is_write=False)
        assert timing.data_end_ps > 0

    def test_io_path_serialises_bursts_across_banks(self):
        rank = make_rank()
        a = rank.access(bank=0, row=0, at_ps=0, is_write=False)
        b = rank.access(bank=1, row=0, at_ps=0, is_write=False)
        # Different banks can overlap commands, but data shares the chip IO.
        assert b.data_start_ps >= a.data_end_ps

    def test_precharge_all_closes_rows(self):
        rank = make_rank()
        rank.access(bank=0, row=3, at_ps=0, is_write=False)
        rank.access(bank=1, row=4, at_ps=0, is_write=False)
        done = rank.precharge_all(T.cycles_to_ps(200))
        assert done > T.cycles_to_ps(200)
        assert all(bank.open_row is None for bank in rank.banks)

    def test_hit_and_miss_aggregation(self):
        rank = make_rank()
        rank.access(bank=0, row=1, at_ps=0, is_write=False)
        rank.access(bank=0, row=1, at_ps=T.cycles_to_ps(50), is_write=False)
        rank.access(bank=0, row=2, at_ps=T.cycles_to_ps(100), is_write=False)
        assert rank.row_hits == 1
        assert rank.row_misses == 1
        assert rank.activations == 2


class TestRefresh:
    def test_refresh_blocks_rank_and_closes_rows(self):
        rank = Rank(T, banks=8, refresh_enabled=True)
        rank.access(bank=0, row=1, at_ps=0, is_write=False)
        # Jump past the first tREFI: the access should be pushed past tRFC
        # and the previously open row must be gone (precharge-all).
        at = T.trefi_ps + 1
        timing = rank.access(bank=0, row=1, at_ps=at, is_write=False)
        assert not timing.row_hit  # row was closed by refresh
        assert timing.cas_ps >= T.trefi_ps + T.trfc_ps
        assert rank.refresh.refreshes_issued == 1

    def test_multiple_due_refreshes_settle(self):
        rank = Rank(T, banks=8, refresh_enabled=True)
        at = 3 * T.trefi_ps + 5
        rank.access(bank=0, row=0, at_ps=at, is_write=False)
        assert rank.refresh.refreshes_issued == 3

    def test_disabled_refresh_never_fires(self):
        rank = make_rank(refresh=False)
        rank.access(bank=0, row=0, at_ps=10 * T.trefi_ps, is_write=False)
        assert rank.refresh.refreshes_issued == 0

    def test_overhead_fraction(self):
        rank = Rank(T, banks=8)
        assert rank.refresh.overhead_fraction() == pytest.approx(
            T.trfc_ps / T.trefi_ps
        )
