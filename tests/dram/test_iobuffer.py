"""Tests for the 8n-prefetch IO buffer beat schedule (§2.1/§2.2)."""

import pytest

from repro.dram import DDR3_1600, DDR3_2133, IOBuffer
from repro.errors import DRAMError


def test_eight_beats_per_burst():
    io = IOBuffer(DDR3_1600)
    schedule = io.beat_schedule(0)
    assert len(schedule.beat_ps) == 8


def test_beats_arrive_on_clock_edges():
    """One 64-bit word per half bus cycle — dual data rate."""
    io = IOBuffer(DDR3_1600)
    schedule = io.beat_schedule(0)
    half = DDR3_1600.tck_ps / 2
    for k, beat in enumerate(schedule.beat_ps):
        assert beat == pytest.approx((k + 1) * half, abs=1)


def test_burst_spans_four_bus_cycles():
    io = IOBuffer(DDR3_1600)
    schedule = io.beat_schedule(1000)
    assert schedule.end_ps - schedule.start_ps == pytest.approx(
        4 * DDR3_1600.tck_ps, abs=4
    )
    assert io.burst_duration_ps() == DDR3_1600.cycles_to_ps(4)


def test_words_available_by():
    io = IOBuffer(DDR3_1600)
    tck = DDR3_1600.tck_ps
    assert io.words_available_by(0, 0) == 0
    assert io.words_available_by(0, tck) == 2          # two edges passed
    assert io.words_available_by(0, 4 * tck) == 8      # full burst
    assert io.words_available_by(0, 100 * tck) == 8    # capped


def test_paper_processing_window():
    """§2.2: 8 words at ~2 GHz take ~4 ns; CAS latency is ~13 ns, so JAFAR
    waits ~9 of every 13 ns for data — verify those magnitudes hold."""
    t = DDR3_2133
    jafar_clk = t.jafar_clock()
    process_ps = 8 * jafar_clk.period_ps
    assert process_ps == pytest.approx(4_000, rel=0.1)     # ~4 ns
    assert t.cl_ps == pytest.approx(13_000, rel=0.02)      # ~13 ns
    assert t.cl_ps - process_ps == pytest.approx(9_000, rel=0.15)  # ~9 ns slack


def test_negative_start_raises():
    with pytest.raises(DRAMError):
        IOBuffer(DDR3_1600).beat_schedule(-5)
