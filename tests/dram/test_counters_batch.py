"""``IMCCounters.record_run`` must be bit-identical to per-request record.

The batched controller pipeline folds a window's counter updates into one
call (merged busy intervals, run-length-folded latencies, single counter
bumps).  These tests replay seeded random completion streams through both
paths and compare the full metrics snapshot — every counter, histogram
moment, bucket dict, busy span and idle-gap record.
"""

import random
from types import SimpleNamespace

import pytest

from repro.dram import DDR3_1600
from repro.dram.counters import IMCCounters
from repro.sim.stats import Histogram


def _fake_completed(rng, n, gap_chance):
    """Arrival-sorted fake completions with controllable idle gaps."""
    out = []
    t = 1000
    for _ in range(n):
        if rng.random() < gap_chance:
            t += rng.randrange(50_000, 200_000)   # force an idle gap
        else:
            t += rng.randrange(0, 2_000)          # stay inside the span
        arrival = t
        finish = arrival + rng.choice((13750, 13750, 13750, 21250, 0))
        out.append(SimpleNamespace(
            request=SimpleNamespace(is_write=rng.random() < 0.4,
                                    arrival_ps=arrival),
            finish_ps=finish,
            row_hits=rng.randrange(0, 3),
            row_misses=rng.randrange(0, 2),
        ))
    return out


def _snapshot(counters):
    counters.finish()
    return counters.metrics.snapshot()


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("gap_chance", [0.0, 0.3])
def test_record_run_matches_per_request_record(seed, gap_chance):
    rng = random.Random(seed)
    completed = _fake_completed(rng, rng.randrange(1, 120), gap_chance)
    ref = IMCCounters(DDR3_1600)
    for done in completed:
        ref.record(done.request.is_write, done.request.arrival_ps,
                   done.finish_ps, done.row_hits, done.row_misses)
    run = IMCCounters(DDR3_1600)
    run.record_run(completed)
    assert _snapshot(ref) == _snapshot(run)


def test_record_run_empty_is_noop():
    counters = IMCCounters(DDR3_1600)
    before = _snapshot(counters)
    counters.record_run([])
    assert _snapshot(counters) == before


def test_histogram_record_n_matches_repeated_record():
    ref, fold = Histogram("ref"), Histogram("fold")
    for value, n in ((0, 3), (13750, 100), (1, 1), (1 << 40, 7)):
        for _ in range(n):
            ref.record(value)
        fold.record_n(value, n)
        fold.record_n(value, 0)   # n == 0 is a no-op
    assert (ref.count, ref.total, ref.total_sq, ref.min, ref.max,
            ref.buckets) == (fold.count, fold.total, fold.total_sq,
                             fold.min, fold.max, fold.buckets)
