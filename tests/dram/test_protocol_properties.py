"""Property-based tests of DRAM protocol invariants.

Whatever access sequence arrives, the timing model must never violate the
DDR3 protocol: data-bus windows on one rank never overlap, column commands
are spaced by at least tCCD, row hits only happen against the open row, and
time never goes backwards.  Hypothesis drives random request sequences at
both the bank and controller level.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    DDR3_1066,
    DDR3_1600,
    DDR3_2133,
    Bank,
    DRAMGeometry,
    MemRequest,
    MemoryController,
)

GEO = DRAMGeometry(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                   banks_per_rank=8, row_bytes=8192, rows_per_bank=64)


@st.composite
def access_sequence(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    rows = draw(st.lists(st.integers(0, 7), min_size=n, max_size=n))
    gaps = draw(st.lists(st.integers(0, 50), min_size=n, max_size=n))
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return list(zip(rows, gaps, writes))


@settings(max_examples=60, deadline=None)
@given(access_sequence(), st.sampled_from([DDR3_1066, DDR3_1600, DDR3_2133]))
def test_bank_data_windows_never_overlap(seq, timings):
    bank = Bank(timings)
    t = 0
    windows = []
    for row, gap, is_write in seq:
        t += timings.cycles_to_ps(gap)
        timing = bank.access(row, t, is_write)
        windows.append((timing.data_start_ps, timing.data_end_ps))
    windows.sort()
    for (_, end_a), (start_b, _) in zip(windows, windows[1:]):
        assert start_b >= end_a


@settings(max_examples=60, deadline=None)
@given(access_sequence(), st.sampled_from([DDR3_1066, DDR3_1600, DDR3_2133]))
def test_bank_cas_spacing_at_least_tccd(seq, timings):
    bank = Bank(timings)
    t = 0
    cas_times = []
    for row, gap, is_write in seq:
        t += timings.cycles_to_ps(gap)
        cas_times.append(bank.access(row, t, is_write).cas_ps)
    for a, b in zip(cas_times, cas_times[1:]):
        assert b - a >= timings.cycles_to_ps(timings.tccd)


@settings(max_examples=60, deadline=None)
@given(access_sequence())
def test_bank_row_hits_only_on_open_row(seq):
    bank = Bank(DDR3_1600)
    t = 0
    prev_row = None
    for row, gap, is_write in seq:
        t += DDR3_1600.cycles_to_ps(gap)
        timing = bank.access(row, t, is_write)
        if timing.row_hit:
            assert row == prev_row
        prev_row = row


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, GEO.total_bytes // 64 - 1),
                          st.integers(0, 100), st.booleans()),
                min_size=1, max_size=30))
def test_controller_results_causal_and_monotone(ops):
    mc = MemoryController(DDR3_1600, GEO, refresh_enabled=False)
    t = 0
    for line, gap, is_write in ops:
        t += DDR3_1600.cycles_to_ps(gap)
        done = mc.submit(MemRequest(line * 64, 64, is_write, t))
        # Causality: nothing completes before it arrives or issues.
        assert done.issue_ps >= t
        assert done.first_data_ps > done.issue_ps
        assert done.finish_ps > done.first_data_ps
        assert done.row_hits + done.row_misses == 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, GEO.total_bytes // 64 - 1),
                min_size=2, max_size=30))
def test_controller_counters_balance(lines):
    mc = MemoryController(DDR3_1600, GEO, refresh_enabled=False)
    for k, line in enumerate(lines):
        mc.submit(MemRequest(line * 64, 64, k % 3 == 0,
                             DDR3_1600.cycles_to_ps(100 * k)))
    mc.finish()
    counters = mc.counters
    assert counters.reads.value + counters.writes.value == len(lines)
    assert counters.row_hits.value + counters.row_misses.value == len(lines)
    # Busy time can never exceed the span from first arrival to last finish.
    assert counters.combined.busy_ps <= counters.combined.span_ps()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=2, max_size=40))
def test_closed_page_latency_is_row_independent(rows):
    """Under auto-precharge every isolated access costs the same, no matter
    which rows precede it (no history leaks through the row buffer)."""
    mc = MemoryController(DDR3_1600, GEO, refresh_enabled=False,
                          page_policy="closed")
    t = DDR3_1600
    latencies = []
    time = 0
    for row in rows:
        time += t.cycles_to_ps(200)  # far apart: no queueing effects
        done = mc.submit(MemRequest(row * GEO.row_bytes, 64, False, time))
        latencies.append(done.latency_ps)
    assert len(set(latencies)) == 1
