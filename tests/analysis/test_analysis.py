"""Tests for the figure pipelines and ASCII reporting."""

import pytest

from repro.analysis import (
    Fig3Point,
    check_figure3_shape,
    check_figure4_shape,
    average_idle_cycles,
    measure_point,
    render_bars,
    render_series,
    render_table,
    run_figure3,
    run_figure4,
)
from repro.errors import ConfigError, ReproError


class TestFigure3Pipeline:
    def test_measure_point_consistency(self):
        point = measure_point(0.5, num_rows=32_768)
        assert point.achieved_selectivity == pytest.approx(0.5, abs=0.02)
        assert point.cpu_ps > point.jafar_ps
        assert 3.0 < point.speedup < 12.0

    def test_zero_selectivity_point(self):
        point = measure_point(0.0, num_rows=16_384)
        assert point.matches == 0
        assert point.speedup > 3.0

    def test_predicated_baseline_option(self):
        branchy = measure_point(0.0, num_rows=16_384, kernel="branchy")
        predicated = measure_point(0.0, num_rows=16_384, kernel="predicated")
        # Predication costs more at low selectivity ("adverse impact").
        assert predicated.cpu_ps > branchy.cpu_ps

    def test_shape_checker_on_synthetic_points(self):
        good = [Fig3Point(0.0, 0.0, 500, 100, 0),
                Fig3Point(1.0, 1.0, 900, 100, 10)]
        checks = check_figure3_shape(good)
        assert checks["low_end_midsingle"]
        assert checks["high_end_about_9x"]
        assert checks["jafar_selectivity_invariant"]

    def test_shape_checker_catches_flat_speedup(self):
        flat = [Fig3Point(0.0, 0.0, 500, 100, 0),
                Fig3Point(1.0, 1.0, 520, 100, 10)]
        assert not check_figure3_shape(flat)["grows_with_selectivity"]

    def test_shape_checker_needs_two_points(self):
        with pytest.raises(ConfigError):
            check_figure3_shape([Fig3Point(0.0, 0.0, 1, 1, 0)])

    def test_small_sweep_passes_all_checks(self):
        points = run_figure3(num_rows=32_768, selectivities=(0.0, 0.5, 1.0))
        assert all(check_figure3_shape(points).values())

    def test_invalid_rows(self):
        with pytest.raises(ConfigError):
            measure_point(0.5, num_rows=0)


class TestFigure4Pipeline:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure4(scale=0.002, queries=("Q1", "Q6", "Q22"))

    def test_idle_periods_in_band(self, points):
        for point in points:
            assert 100 <= point.mean_idle_cycles <= 1000

    def test_scan_heavy_query_has_shorter_idle(self, points):
        by_name = {p.query: p.mean_idle_cycles for p in points}
        assert by_name["Q6"] < by_name["Q22"]

    def test_average(self, points):
        avg = average_idle_cycles(points)
        assert min(p.mean_idle_cycles for p in points) <= avg
        assert avg <= max(p.mean_idle_cycles for p in points)
        with pytest.raises(ConfigError):
            average_idle_cycles([])

    def test_budget_attached(self, points):
        for point in points:
            assert point.budget.bytes_per_gap > 0
            assert 0 < point.budget.fraction_of_row < 1.5

    def test_shape_checker(self, points):
        checks = check_figure4_shape(points)
        assert checks["range_200_800"]

    def test_unknown_query_rejected(self):
        from repro.analysis.idle import run_query_profile
        from repro.tpch import generate
        with pytest.raises(ConfigError):
            run_query_profile("Q99", generate(scale=0.001))


class TestReporting:
    def test_table_rendering(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table_validation(self):
        with pytest.raises(ReproError):
            render_table([], [])
        with pytest.raises(ReproError):
            render_table(["a"], [[1, 2]])

    def test_bars_scale_to_peak(self):
        text = render_bars({"x": 10.0, "y": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bars_validation(self):
        with pytest.raises(ReproError):
            render_bars({})
        with pytest.raises(ReproError):
            render_bars({"x": 1.0}, width=0)

    def test_series_plot(self):
        text = render_series([0.0, 0.5, 1.0], [5.0, 7.0, 9.0], title="fig3")
        assert "fig3" in text
        assert text.count("*") == 3

    def test_series_validation(self):
        with pytest.raises(ReproError):
            render_series([], [])
        with pytest.raises(ReproError):
            render_series([1.0], [1.0], height=1)
