"""Tests for the select-energy extension study."""

import pytest

from repro.analysis import (
    cpu_select_energy,
    energy_ratio,
    jafar_select_energy,
)
from repro.config import GEM5_PLATFORM
from repro.errors import ConfigError

N = 1_000_000


def test_components_positive_and_total_consistent():
    for energy in (cpu_select_energy(GEM5_PLATFORM, N, 0.5),
                   jafar_select_energy(GEM5_PLATFORM, N, 0.5)):
        assert energy.dram_pj > 0
        assert energy.bus_pj > 0
        assert energy.compute_pj > 0
        assert energy.total_pj == pytest.approx(
            energy.dram_pj + energy.bus_pj + energy.compute_pj)
        assert energy.total_uj == pytest.approx(energy.total_pj / 1e6)


def test_jafar_bus_energy_is_bitset_sized():
    """Only one bit per row crosses the bus: 1/64 of the CPU's word count."""
    cpu = cpu_select_energy(GEM5_PLATFORM, N, 0.0)
    ndp = jafar_select_energy(GEM5_PLATFORM, N, 0.0)
    assert ndp.bus_pj == pytest.approx(cpu.bus_pj / 64, rel=0.05)


def test_cpu_bus_energy_grows_with_selectivity():
    """The position list written back is per-match traffic."""
    low = cpu_select_energy(GEM5_PLATFORM, N, 0.0)
    high = cpu_select_energy(GEM5_PLATFORM, N, 1.0)
    assert high.bus_pj == pytest.approx(2 * low.bus_pj, rel=0.01)


def test_jafar_energy_selectivity_invariant():
    low = jafar_select_energy(GEM5_PLATFORM, N, 0.0)
    high = jafar_select_energy(GEM5_PLATFORM, N, 1.0)
    assert low.total_pj == high.total_pj


def test_ndp_wins_at_every_selectivity():
    for s in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert energy_ratio(GEM5_PLATFORM, N, s) > 1.0


def test_ratio_grows_with_selectivity():
    assert energy_ratio(GEM5_PLATFORM, N, 1.0) > energy_ratio(
        GEM5_PLATFORM, N, 0.0)


def test_both_dram_components_similar():
    """Both paths read the same column out of the arrays: internal DRAM
    energy should be nearly equal (JAFAR adds only bitset writebacks)."""
    cpu = cpu_select_energy(GEM5_PLATFORM, N, 0.5)
    ndp = jafar_select_energy(GEM5_PLATFORM, N, 0.5)
    assert ndp.dram_pj == pytest.approx(cpu.dram_pj, rel=0.05)


def test_validation():
    with pytest.raises(ConfigError):
        cpu_select_energy(GEM5_PLATFORM, 0, 0.5)
    with pytest.raises(ConfigError):
        jafar_select_energy(GEM5_PLATFORM, 10, 1.5)
