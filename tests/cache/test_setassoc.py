"""Tests for the set-associative cache model."""

import pytest

from repro.cache import SetAssociativeCache
from repro.errors import ConfigError


def make_cache(size=1024, line=64, ways=2):
    return SetAssociativeCache("L1", size, line, ways)


def test_cold_miss_then_hit():
    cache = make_cache()
    assert not cache.access(0).hit
    assert cache.access(0).hit
    assert cache.access(63).hit  # same line
    assert cache.hits == 2 and cache.misses == 1


def test_lru_eviction_within_set():
    cache = make_cache(size=256, line=64, ways=2)  # 2 sets
    set_stride = 2 * 64  # addresses mapping to set 0
    cache.access(0)
    cache.access(set_stride)
    cache.access(2 * set_stride)  # evicts line 0 (LRU)
    assert not cache.access(0).hit
    assert cache.access(2 * set_stride).hit


def test_lru_updated_on_hit():
    cache = make_cache(size=256, line=64, ways=2)
    set_stride = 128
    cache.access(0)
    cache.access(set_stride)
    cache.access(0)  # refresh line 0
    cache.access(2 * set_stride)  # should evict set_stride, not 0
    assert cache.access(0).hit
    assert not cache.access(set_stride).hit


def test_dirty_victim_reports_writeback():
    cache = make_cache(size=256, line=64, ways=1)  # direct-mapped, 4 sets
    cache.access(0, is_write=True)
    result = cache.access(256)  # same set, evicts dirty line 0
    assert result.writeback_addr == 0
    assert cache.writebacks == 1


def test_clean_victim_has_no_writeback():
    cache = make_cache(size=256, line=64, ways=1)
    cache.access(0)
    result = cache.access(256)
    assert result.writeback_addr is None


def test_write_hit_marks_dirty():
    cache = make_cache(size=256, line=64, ways=1)
    cache.access(0)                  # clean fill
    cache.access(0, is_write=True)   # dirty it
    result = cache.access(256)
    assert result.writeback_addr == 0


def test_probe_does_not_disturb_state():
    cache = make_cache()
    cache.access(0)
    hits_before = cache.hits
    assert cache.probe(0)
    assert not cache.probe(4096)
    assert cache.hits == hits_before


def test_invalidate():
    cache = make_cache()
    cache.access(0)
    assert cache.invalidate(0)
    assert not cache.invalidate(0)
    assert not cache.access(0).hit


def test_flush_returns_dirty_lines():
    cache = make_cache(size=256, line=64, ways=2)
    cache.access(0, is_write=True)
    cache.access(64)
    dirty = cache.flush()
    assert dirty == [0]
    assert not cache.probe(0) and not cache.probe(64)


def test_miss_rate():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == pytest.approx(0.5)
    assert SetAssociativeCache("x", 1024).miss_rate == 0.0


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigError):
        SetAssociativeCache("x", 1000)  # not a power of two
    with pytest.raises(ConfigError):
        SetAssociativeCache("x", 1024, line_bytes=64, ways=3,
                            hit_latency_cycles=1)
    with pytest.raises(ConfigError):
        SetAssociativeCache("x", 1024, hit_latency_cycles=-1)
