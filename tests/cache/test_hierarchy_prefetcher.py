"""Tests for the cache hierarchy and stream prefetcher."""

import pytest

from repro.cache import CacheHierarchy, SetAssociativeCache, StreamPrefetcher
from repro.errors import ConfigError


def make_hierarchy():
    l1 = SetAssociativeCache("L1", 1024, 64, 2, hit_latency_cycles=4)
    l2 = SetAssociativeCache("L2", 4096, 64, 4, hit_latency_cycles=12)
    return CacheHierarchy([l1, l2])


class TestHierarchy:
    def test_full_miss_goes_to_dram(self):
        h = make_hierarchy()
        result = h.access(0)
        assert result.dram_access
        assert result.level == 0
        assert result.latency_cycles == 16  # both lookups paid

    def test_l1_hit_after_fill(self):
        h = make_hierarchy()
        h.access(0)
        result = h.access(0)
        assert result.level == 1
        assert result.latency_cycles == 4

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.access(0)
        # Evict line 0 from L1 (2-way, 8 sets -> set stride 512).
        h.access(512)
        h.access(1024)
        result = h.access(0)
        assert result.level == 2
        assert result.latency_cycles == 16

    def test_dirty_l1_victim_lands_in_l2_not_memory(self):
        h = make_hierarchy()
        h.access(0, is_write=True)
        h.access(512)
        result = h.access(1024)  # evicts dirty 0 into L2
        assert result.writebacks == ()
        # Line 0 now hits in L2.
        assert h.access(0).level == 2

    def test_writeback_reaches_memory_when_l2_overflows(self):
        l1 = SetAssociativeCache("L1", 128, 64, 1)   # 2 lines
        l2 = SetAssociativeCache("L2", 256, 64, 1)   # 4 lines
        h = CacheHierarchy([l1, l2])
        h.access(0, is_write=True)
        # Conflict chain: set count L1=2, L2=4. Addresses 0,128,256... map to
        # L1 set 0; L2 sets cycle mod 256. Fill until dirty 0 is pushed out
        # of both levels.
        writebacks = []
        for addr in (128, 256, 384, 512, 640):
            writebacks += list(h.access(addr, is_write=False).writebacks)
        assert 0 in writebacks

    def test_invalidate_range(self):
        h = make_hierarchy()
        h.access(0)
        h.access(64)
        dropped = h.invalidate_range(0, 128)
        assert dropped == 4  # two lines x two levels (inclusive fill)
        assert h.access(0).dram_access

    def test_invalid_configs(self):
        big = SetAssociativeCache("big", 4096)
        small = SetAssociativeCache("small", 1024)
        with pytest.raises(ConfigError, match="grow"):
            CacheHierarchy([big, small])
        with pytest.raises(ConfigError):
            CacheHierarchy([])
        odd = SetAssociativeCache("odd", 2048, line_bytes=128, ways=2)
        with pytest.raises(ConfigError, match="line size"):
            CacheHierarchy([small, odd])
        with pytest.raises(ConfigError):
            make_hierarchy().invalidate_range(0, 0)

    def test_stats_snapshot(self):
        h = make_hierarchy()
        h.access(0)
        h.access(0)
        stats = h.stats()
        assert stats["L1"]["hits"] == 1
        assert stats["L1"]["misses"] == 1
        assert stats["L2"]["misses"] == 1


class TestPrefetcher:
    def test_stream_detected_after_trigger(self):
        pf = StreamPrefetcher(line_bytes=64, depth=4, trigger=2)
        assert pf.observe(0) == []
        assert pf.observe(64) == []
        prefetches = pf.observe(128)
        assert prefetches == [192, 256, 320, 384]

    def test_descending_stream(self):
        pf = StreamPrefetcher(line_bytes=64, depth=2, trigger=2)
        pf.observe(640)
        pf.observe(576)
        assert pf.observe(512) == [448, 384]

    def test_random_pattern_never_triggers(self):
        pf = StreamPrefetcher(depth=4, trigger=2)
        for addr in (0, 4096, 64, 8192, 128):
            assert pf.observe(addr) == []

    def test_same_line_accesses_do_not_break_stream(self):
        pf = StreamPrefetcher(line_bytes=64, depth=1, trigger=2)
        pf.observe(0)
        pf.observe(64)
        pf.observe(80)  # same line as 64
        assert pf.observe(128) == [192]

    def test_reset(self):
        pf = StreamPrefetcher(trigger=1)
        pf.observe(0)
        pf.observe(64)
        pf.reset()
        assert pf.observe(128) == []

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            StreamPrefetcher(depth=0)
        with pytest.raises(ConfigError):
            StreamPrefetcher(trigger=0)
