"""Tests for column types, dictionary encoding, columns, tables, catalog."""

from datetime import date

import numpy as np
import pytest

from repro.columnstore import Catalog, Column, ColumnType, Dictionary, Table
from repro.columnstore.types import (
    coerce_storage,
    decode_date,
    decode_decimal,
    encode_date,
    encode_decimal,
)
from repro.errors import SchemaError, TypeMismatchError


class TestScalarEncodings:
    def test_date_round_trip(self):
        for d in (date(1970, 1, 1), date(1995, 3, 15), date(2038, 1, 19)):
            assert decode_date(encode_date(d)) == d

    def test_epoch_is_zero(self):
        assert encode_date(date(1970, 1, 1)) == 0

    def test_decimal_round_trip(self):
        assert decode_decimal(encode_decimal(19.99)) == pytest.approx(19.99)
        assert encode_decimal(0.05) == 5
        assert encode_decimal(-1.5) == -150


class TestDictionary:
    def test_order_preserving(self):
        """Codes follow sort order, so range predicates work on codes."""
        d = Dictionary.from_values(["cherry", "apple", "banana", "apple"])
        assert d.values == ["apple", "banana", "cherry"]
        assert d.encode("apple") < d.encode("banana") < d.encode("cherry")

    def test_encode_decode_round_trip(self):
        d = Dictionary.from_values(["x", "y", "z"])
        for value in ("x", "y", "z"):
            assert d.decode(d.encode(value)) == value

    def test_unknown_value_raises(self):
        d = Dictionary.from_values(["a"])
        with pytest.raises(TypeMismatchError):
            d.encode("missing")
        with pytest.raises(TypeMismatchError):
            d.decode(5)

    def test_prefix_range(self):
        d = Dictionary.from_values(["13-555", "13-999", "14-000", "31-222"])
        assert d.range_for_prefix("13") == (0, 1)
        assert d.range_for_prefix("31") == (3, 3)
        assert d.range_for_prefix("99") is None

    def test_len(self):
        assert len(Dictionary.from_values(["a", "b", "a"])) == 2


class TestCoercion:
    def test_int64_passthrough(self):
        out = coerce_storage(np.array([1, 2], dtype=np.int32),
                             ColumnType.INT64)
        assert out.dtype == np.int64

    def test_int64_rejects_floats(self):
        with pytest.raises(TypeMismatchError):
            coerce_storage(np.array([1.5]), ColumnType.INT64)

    def test_dates_from_objects_and_ints(self):
        days = coerce_storage([date(1970, 1, 2)], ColumnType.DATE)
        assert days.tolist() == [1]
        assert coerce_storage([10, 20], ColumnType.DATE).tolist() == [10, 20]

    def test_decimal_from_floats_and_fixed(self):
        assert coerce_storage([1.25], ColumnType.DECIMAL).tolist() == [125]
        assert coerce_storage(np.array([125]), ColumnType.DECIMAL).tolist() == [125]

    def test_string_requires_dictionary(self):
        with pytest.raises(SchemaError):
            coerce_storage(["a"], ColumnType.STRING)


class TestColumnTable:
    def test_build_string_column_auto_dictionary(self):
        col = Column.build("seg", ColumnType.STRING, ["B", "A", "B"])
        assert col.values.tolist() == [1, 0, 1]
        assert col.decode(0) == "B"

    def test_decode_typed_values(self):
        col = Column.build("d", ColumnType.DATE, [date(1995, 3, 15)])
        assert col.decode(0) == date(1995, 3, 15)
        dec = Column.build("m", ColumnType.DECIMAL, [19.99])
        assert dec.decode(0) == pytest.approx(19.99)

    def test_take(self):
        col = Column.build("x", ColumnType.INT64, np.arange(10))
        sub = col.take(np.array([1, 3, 5]))
        assert sub.values.tolist() == [1, 3, 5]
        assert sub.name == "x"

    def test_storage_must_be_int64(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INT64, np.arange(3, dtype=np.int32))

    def test_table_rejects_mismatched_lengths(self):
        table = Table.build("t", [
            Column.build("a", ColumnType.INT64, np.arange(5))])
        with pytest.raises(SchemaError, match="rows"):
            table.add(Column.build("b", ColumnType.INT64, np.arange(3)))

    def test_table_rejects_duplicates(self):
        table = Table.build("t", [
            Column.build("a", ColumnType.INT64, np.arange(5))])
        with pytest.raises(SchemaError, match="duplicate"):
            table.add(Column.build("a", ColumnType.INT64, np.arange(5)))

    def test_table_lookup_and_contains(self):
        table = Table.build("t", [
            Column.build("a", ColumnType.INT64, np.arange(5))])
        assert table["a"].name == "a"
        assert "a" in table and "b" not in table
        with pytest.raises(SchemaError, match="no column"):
            table["b"]

    def test_table_metadata(self):
        table = Table.build("t", [
            Column.build("a", ColumnType.INT64, np.arange(5)),
            Column.build("b", ColumnType.INT64, np.arange(5)),
        ])
        assert table.num_rows == 5
        assert table.column_names == ["a", "b"]
        assert table.nbytes == 2 * 5 * 8
        assert Table("empty").num_rows == 0


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        table = Table.build("t", [
            Column.build("a", ColumnType.INT64, np.arange(2))])
        catalog.register(table)
        assert catalog.table("t") is table
        assert "t" in catalog
        assert catalog.table_names == ["t"]

    def test_duplicate_and_missing(self):
        catalog = Catalog()
        table = Table("t")
        catalog.register(table)
        with pytest.raises(SchemaError, match="already"):
            catalog.register(Table("t"))
        with pytest.raises(SchemaError, match="no table"):
            catalog.table("other")
