"""Tests for position lists, bitvectors, and predicate lowering."""

from datetime import date

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import (
    Bitvector,
    Column,
    ColumnType,
    PositionList,
    Table,
    between,
    compare,
    equals,
    in_set,
    prefix,
)
from repro.errors import ColumnStoreError, PlanError, TypeMismatchError
from repro.jafar import Predicate


class TestBitvector:
    def test_count_and_positions(self):
        bits = Bitvector(np.array([True, False, True, True]))
        assert bits.count() == 3
        assert bits.to_positions().positions.tolist() == [0, 2, 3]

    def test_boolean_algebra(self):
        a = Bitvector(np.array([True, True, False, False]))
        b = Bitvector(np.array([True, False, True, False]))
        assert (a & b).bits.tolist() == [True, False, False, False]
        assert (a | b).bits.tolist() == [True, True, True, False]
        assert (~a).bits.tolist() == [False, False, True, True]

    def test_length_mismatch_raises(self):
        with pytest.raises(ColumnStoreError):
            Bitvector(np.array([True])) & Bitvector(np.array([True, False]))

    def test_requires_bool_dtype(self):
        with pytest.raises(ColumnStoreError):
            Bitvector(np.array([1, 0]))


class TestPositionList:
    def test_round_trip_with_bitvector(self):
        positions = PositionList.of(1, 4, 7)
        bits = positions.to_bitvector(10)
        assert bits.to_positions().positions.tolist() == [1, 4, 7]

    def test_ordering_enforced(self):
        with pytest.raises(ColumnStoreError):
            PositionList(np.array([3, 1], dtype=np.int64))
        with pytest.raises(ColumnStoreError):
            PositionList(np.array([1, 1], dtype=np.int64))
        with pytest.raises(ColumnStoreError):
            PositionList(np.array([-1], dtype=np.int64))

    def test_out_of_range_bitvector(self):
        with pytest.raises(ColumnStoreError):
            PositionList.of(12).to_bitvector(10)

    def test_set_operations(self):
        a = PositionList.of(1, 2, 3)
        b = PositionList.of(2, 3, 4)
        assert a.intersect(b).positions.tolist() == [2, 3]
        assert a.union(b).positions.tolist() == [1, 2, 3, 4]

    def test_selectivity(self):
        assert PositionList.of(0, 1).selectivity(4) == 0.5
        with pytest.raises(ColumnStoreError):
            PositionList.of(0).selectivity(0)

    def test_all_rows(self):
        assert PositionList.all_rows(3).positions.tolist() == [0, 1, 2]

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 200), min_size=0, max_size=50),
           st.integers(201, 300))
    def test_round_trip_property(self, positions, num_rows):
        plist = PositionList(np.array(sorted(positions), dtype=np.int64))
        assert (plist.to_bitvector(num_rows).to_positions().positions
                == plist.positions).all()


@pytest.fixture()
def table():
    return Table.build("t", [
        Column.build("num", ColumnType.INT64, np.arange(100)),
        Column.build("when", ColumnType.DATE,
                     [date(1995, 1, 1), date(1995, 6, 1)] * 50),
        Column.build("price", ColumnType.DECIMAL, [1.25, 9.75] * 50),
        Column.build("phone", ColumnType.STRING,
                     ["13-111", "31-222", "13-999", "23-000"] * 25),
    ])


class TestPredicates:
    def test_between_user_bounds(self, table):
        pred = between(table, "num", 10, 20)
        assert (pred.low, pred.high) == (10, 20)

    def test_date_literals_lowered(self, table):
        pred = compare(table, "when", Predicate.LT, date(1995, 3, 15))
        from repro.columnstore import encode_date
        assert pred.high == encode_date(date(1995, 3, 15)) - 1

    def test_decimal_literals_lowered(self, table):
        pred = compare(table, "price", Predicate.GE, 5.0)
        assert pred.low == 500

    def test_string_equality_via_dictionary(self, table):
        pred = equals(table, "phone", "31-222")
        dictionary = table["phone"].dictionary
        assert pred.low == pred.high == dictionary.encode("31-222")

    def test_prefix_predicate(self, table):
        pred = prefix(table, "phone", "13")
        dictionary = table["phone"].dictionary
        codes = [dictionary.encode("13-111"), dictionary.encode("13-999")]
        assert pred.low == min(codes) and pred.high == max(codes)

    def test_prefix_no_match_is_empty(self, table):
        assert prefix(table, "phone", "99").is_empty()

    def test_prefix_requires_string_column(self, table):
        with pytest.raises(TypeMismatchError):
            prefix(table, "num", "1")

    def test_incompatible_literal_raises(self, table):
        with pytest.raises(TypeMismatchError):
            compare(table, "num", Predicate.EQ, "not-a-number")

    def test_in_set_coalesces_adjacent(self, table):
        ranges = in_set(table, "num", [5, 6, 7, 20, 22])
        spans = [(r.low, r.high) for r in ranges]
        assert spans == [(5, 7), (20, 20), (22, 22)]

    def test_in_set_deduplicates(self, table):
        ranges = in_set(table, "num", [5, 5, 6])
        assert [(r.low, r.high) for r in ranges] == [(5, 6)]

    def test_in_set_empty_raises(self, table):
        with pytest.raises(PlanError):
            in_set(table, "num", [])

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 60), min_size=1, max_size=20))
    def test_in_set_semantics_property(self, values):
        # Build the table inline: hypothesis forbids function-scoped fixtures.
        table = Table.build("t", [
            Column.build("num", ColumnType.INT64, np.arange(100))])
        ranges = in_set(table, "num", sorted(values))
        column = table["num"].values
        got = np.zeros(column.size, dtype=bool)
        for r in ranges:
            got |= (column >= r.low) & (column <= r.high)
        expected = np.isin(column, np.array(sorted(values)))
        assert (got == expected).all()
