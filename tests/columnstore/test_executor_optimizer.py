"""Tests for the plan layer, the query executor, and the pushdown optimizer."""

import numpy as np
import pytest

from repro.columnstore import (
    Aggregate,
    AggregateSpec,
    Catalog,
    Column,
    ColumnType,
    ExecutionContext,
    Join,
    OrderBy,
    Project,
    QueryExecutor,
    RangePredicate,
    Scan,
    Select,
    StorageManager,
    Table,
    between,
    decide_pushdown,
    route_select,
    walk,
)
from repro.columnstore.operators import AggKind
from repro.config import GEM5_PLATFORM
from repro.errors import PlanError
from repro.system import Machine


def make_world(use_ndp=False, n=4096, seed=3):
    rng = np.random.default_rng(seed)
    t = Table.build("t", [
        Column.build("a", ColumnType.INT64, rng.integers(0, 100, n)),
        Column.build("b", ColumnType.INT64, rng.integers(0, 10, n)),
        Column.build("k", ColumnType.INT64, rng.integers(0, 50, n)),
    ])
    dim = Table.build("dim", [
        Column.build("k", ColumnType.INT64, np.arange(50)),
        Column.build("label", ColumnType.INT64, np.arange(50) * 100),
    ])
    machine = Machine(GEM5_PLATFORM)
    storage = StorageManager(machine)
    storage.load_table(t)
    storage.load_table(dim)
    catalog = Catalog()
    catalog.register(t)
    catalog.register(dim)
    ctx = ExecutionContext(machine, storage, use_ndp=use_ndp)
    return ctx, catalog, t, dim


class TestPlanValidation:
    def test_walk_traverses_tree(self):
        plan = Select(Scan("t"), (RangePredicate("a", 0, 5),))
        assert [type(n).__name__ for n in walk(plan)] == ["Select", "Scan"]

    def test_select_needs_predicates(self):
        with pytest.raises(PlanError):
            Select(Scan("t"), ()).validate()

    def test_project_needs_columns(self):
        with pytest.raises(PlanError):
            Project(Scan("t"), ()).validate()

    def test_aggregate_unique_names(self):
        spec = AggregateSpec("x", "a", AggKind.SUM)
        with pytest.raises(PlanError):
            Aggregate(Scan("t"), (), (spec, spec)).validate()

    def test_orderby_flags(self):
        with pytest.raises(PlanError):
            OrderBy(Scan("t"), ("a",), (True, False)).validate()
        with pytest.raises(PlanError):
            OrderBy(Scan("t"), ("a",), limit=0).validate()


class TestExecutor:
    def test_select_project(self, engine):
        ctx, catalog, t, _ = make_world()
        plan = Project(Select(Scan("t"), (RangePredicate("a", 10, 20),)),
                       ("a", "b"))
        rs = QueryExecutor(ctx, catalog).execute(plan)
        mask = (t["a"].values >= 10) & (t["a"].values <= 20)
        assert (rs.column("a") == t["a"].values[mask]).all()
        assert (rs.column("b") == t["b"].values[mask]).all()
        assert rs.duration_ps > 0

    def test_conjunctive_select(self, engine):
        ctx, catalog, t, _ = make_world()
        plan = Project(Select(Scan("t"), (RangePredicate("a", 10, 60),
                                          RangePredicate("b", 0, 4))),
                       ("a",))
        rs = QueryExecutor(ctx, catalog).execute(plan)
        mask = ((t["a"].values >= 10) & (t["a"].values <= 60)
                & (t["b"].values <= 4))
        assert rs.num_rows == int(mask.sum())
        # Second predicate ran as a refinement, not a full scan.
        assert "select.refine" in ctx.profile.times_ps

    def test_scalar_aggregate_plan(self):
        ctx, catalog, t, _ = make_world()
        plan = Aggregate(Select(Scan("t"), (RangePredicate("a", 0, 50),)),
                         (), (AggregateSpec("total", "b", AggKind.SUM),))
        rs = QueryExecutor(ctx, catalog).execute(plan)
        mask = t["a"].values <= 50
        assert rs.column("total")[0] == t["b"].values[mask].sum()

    def test_group_by_plan(self):
        ctx, catalog, t, _ = make_world()
        plan = Aggregate(Scan("t"), ("b",),
                         (AggregateSpec("cnt", "a", AggKind.COUNT),))
        rs = QueryExecutor(ctx, catalog).execute(plan)
        assert rs.num_rows == np.unique(t["b"].values).size
        assert rs.column("cnt").sum() == t.num_rows

    def test_join_plan(self):
        ctx, catalog, t, dim = make_world()
        plan = Join(Project(Scan("dim"), ("k", "label")),
                    Project(Select(Scan("t"), (RangePredicate("a", 0, 10),)),
                            ("k", "a")),
                    left_key="k", right_key="k")
        rs = QueryExecutor(ctx, catalog).execute(plan)
        mask = t["a"].values <= 10
        assert rs.num_rows == int(mask.sum())  # FK join preserves rows
        assert (rs.column("label") == rs.column("k") * 100).all()

    def test_order_by_with_limit(self):
        ctx, catalog, t, _ = make_world()
        plan = OrderBy(Project(Scan("t"), ("a",)), ("a",),
                       descending=(True,), limit=5)
        rs = QueryExecutor(ctx, catalog).execute(plan)
        expected = np.sort(t["a"].values)[::-1][:5]
        assert rs.column("a").tolist() == expected.tolist()

    def test_ndp_and_cpu_plans_agree(self, engine):
        plan = Aggregate(Select(Scan("t"), (RangePredicate("a", 20, 70),)),
                         ("b",), (AggregateSpec("s", "a", AggKind.SUM),))
        cpu_ctx, catalog, _, _ = make_world(use_ndp=False)
        cpu = QueryExecutor(cpu_ctx, catalog).execute(plan)
        ndp_ctx, catalog2, _, _ = make_world(use_ndp=True)
        ndp = QueryExecutor(ndp_ctx, catalog2).execute(plan)
        assert cpu.column("b").tolist() == ndp.column("b").tolist()
        assert cpu.column("s").tolist() == ndp.column("s").tolist()
        assert "select.jafar" in ndp_ctx.profile.times_ps
        assert "select.cpu" in cpu_ctx.profile.times_ps

    def test_missing_column_raises(self):
        ctx, catalog, _, _ = make_world()
        plan = Project(Scan("t"), ("nope",))
        with pytest.raises(Exception):
            QueryExecutor(ctx, catalog).execute(plan)

    def test_result_column_lookup(self):
        ctx, catalog, _, _ = make_world()
        rs = QueryExecutor(ctx, catalog).execute(Project(Scan("t"), ("a",)))
        with pytest.raises(PlanError, match="no column"):
            rs.column("zzz")


class TestPushdownOptimizer:
    def test_large_pinned_column_pushes_down(self):
        ctx, _, _, _ = make_world()
        handle = ctx.storage.handle("t", "a")
        decision = decide_pushdown(ctx, handle, RangePredicate("a", 0, 50))
        assert decision.use_jafar
        assert decision.jafar_estimate_ps < decision.cpu_estimate_ps

    def test_tiny_column_stays_on_cpu(self):
        machine = Machine(GEM5_PLATFORM)
        storage = StorageManager(machine)
        tiny = Table.build("tiny", [
            Column.build("x", ColumnType.INT64, np.arange(32))])
        storage.load_table(tiny)
        ctx = ExecutionContext(machine, storage)
        handle = storage.handle("tiny", "x")
        decision = decide_pushdown(ctx, handle, RangePredicate("x", 0, 5))
        assert not decision.use_jafar
        assert "overhead" in decision.reason

    def test_unpinned_column_stays_on_cpu(self):
        machine = Machine(GEM5_PLATFORM)
        storage = StorageManager(machine, pin=False)
        t = Table.build("t", [
            Column.build("x", ColumnType.INT64, np.arange(100_000))])
        storage.load_table(t)
        ctx = ExecutionContext(machine, storage)
        decision = decide_pushdown(ctx, storage.handle("t", "x"),
                                   RangePredicate("x", 0, 5))
        assert not decision.use_jafar
        assert "pinned" in decision.reason

    def test_degenerate_predicate(self):
        ctx, _, _, _ = make_world()
        handle = ctx.storage.handle("t", "a")
        decision = decide_pushdown(ctx, handle, RangePredicate("a", 9, 3))
        assert not decision.use_jafar

    def test_route_select_string(self):
        ctx, _, _, _ = make_world()
        handle = ctx.storage.handle("t", "a")
        assert route_select(ctx, handle, RangePredicate("a", 0, 50)) in (
            "jafar", "cpu")


class TestAutoRouting:
    def test_auto_mode_uses_jafar_for_big_pinned_columns(self):
        ctx, catalog, t, _ = make_world(use_ndp="auto")
        plan = Project(Select(Scan("t"), (RangePredicate("a", 0, 50),)),
                       ("a",))
        QueryExecutor(ctx, catalog).execute(plan)
        assert "select.jafar" in ctx.profile.times_ps

    def test_auto_mode_keeps_tiny_tables_on_cpu(self):
        machine = Machine(GEM5_PLATFORM)
        storage = StorageManager(machine)
        tiny = Table.build("tiny", [
            Column.build("x", ColumnType.INT64, np.arange(16))])
        storage.load_table(tiny)
        catalog = Catalog()
        catalog.register(tiny)
        ctx = ExecutionContext(machine, storage, use_ndp="auto")
        plan = Project(Select(Scan("tiny"), (RangePredicate("x", 0, 5),)),
                       ("x",))
        QueryExecutor(ctx, catalog).execute(plan)
        assert "select.cpu" in ctx.profile.times_ps
        assert "select.jafar" not in ctx.profile.times_ps

    def test_auto_mode_results_match_forced_modes(self):
        plan = Project(Select(Scan("t"), (RangePredicate("a", 10, 60),)),
                       ("a",))
        outputs = []
        for mode in (False, True, "auto"):
            ctx, catalog, _, _ = make_world(use_ndp=mode)
            rs = QueryExecutor(ctx, catalog).execute(plan)
            outputs.append(rs.column("a").tolist())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_invalid_mode_rejected(self):
        machine = Machine(GEM5_PLATFORM)
        storage = StorageManager(machine)
        with pytest.raises(Exception, match="use_ndp"):
            ExecutionContext(machine, storage, use_ndp="maybe")
