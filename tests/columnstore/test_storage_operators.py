"""Tests for storage placement and the bulk operators."""

import numpy as np
import pytest

from repro.columnstore import (
    Column,
    ColumnType,
    ExecutionContext,
    PositionList,
    RangePredicate,
    StorageManager,
    Table,
)
from repro.columnstore.operators import (
    AggKind,
    expand_bitset,
    fetch,
    group_by,
    hash_join,
    scalar_aggregate,
    select,
    select_cpu,
    select_jafar,
    semi_join_mask,
    sort_by,
    top_n,
)
from repro.config import GEM5_PLATFORM
from repro.errors import ColumnStoreError, PlanError
from repro.system import Machine


def make_ctx(use_ndp=False, n=8192, seed=0, **ctx_kwargs):
    rng = np.random.default_rng(seed)
    table = Table.build("t", [
        Column.build("a", ColumnType.INT64, rng.integers(0, 1000, n)),
        Column.build("b", ColumnType.INT64, rng.integers(0, 50, n)),
    ])
    machine = Machine(GEM5_PLATFORM)
    storage = StorageManager(machine)
    storage.load_table(table)
    ctx = ExecutionContext(machine, storage, use_ndp=use_ndp, **ctx_kwargs)
    return ctx, table


class TestStorageManager:
    def test_columns_materialise_contiguously(self):
        ctx, table = make_ctx()
        handle = ctx.storage.handle("t", "a")
        paddr = ctx.storage.paddr_of(handle)
        values = ctx.machine.memory.view_words(paddr, table.num_rows)
        assert (values == table["a"].values).all()

    def test_pinning_applied(self):
        ctx, _ = make_ctx()
        handle = ctx.storage.handle("t", "a")
        assert ctx.machine.vm.is_pinned(handle.vaddr)

    def test_out_buffer_on_same_dimm(self):
        ctx, _ = make_ctx()
        handle = ctx.storage.handle("t", "a")
        assert handle.out_mapping is not None
        assert ctx.machine.vm.dimm_of(handle.out_mapping.vaddr) == handle.dimm

    def test_double_load_rejected(self):
        ctx, table = make_ctx()
        with pytest.raises(ColumnStoreError, match="already"):
            ctx.storage.load_column("t", table["a"])

    def test_missing_handle(self):
        ctx, _ = make_ctx()
        with pytest.raises(ColumnStoreError, match="not materialised"):
            ctx.storage.handle("t", "zzz")
        assert ctx.storage.is_loaded("t", "a")
        assert not ctx.storage.is_loaded("t", "zzz")

    def test_scratch_region_allocates_fresh_zeroed_memory(self):
        ctx, _ = make_ctx()
        mapping, paddr = ctx.storage.scratch_region(4096)
        assert not ctx.machine.memory.read(paddr, 4096).any()
        mapping2, paddr2 = ctx.storage.scratch_region(4096)
        assert paddr != paddr2  # fresh region per call
        with pytest.raises(ColumnStoreError):
            ctx.storage.scratch_region(0)

    def test_timing_scratch_reuses_region(self):
        ctx, _ = make_ctx()
        first = ctx.storage.timing_scratch(1024)
        second = ctx.storage.timing_scratch(512)
        assert first == second
        bigger = ctx.storage.timing_scratch(1 << 20)
        assert ctx.storage.timing_scratch(2048) == bigger


class TestSelectOperator:
    def test_cpu_and_jafar_agree(self):
        pred = RangePredicate("a", 100, 600)
        cpu_ctx, table = make_ctx(use_ndp=False)
        ndp_ctx, _ = make_ctx(use_ndp=True)
        cpu = select(cpu_ctx, "t", pred)
        ndp = select(ndp_ctx, "t", pred)
        assert cpu.path == "cpu" and ndp.path == "jafar"
        assert (cpu.bitvector.bits == ndp.bitvector.bits).all()
        expected = (table["a"].values >= 100) & (table["a"].values <= 600)
        assert (cpu.bitvector.bits == expected).all()

    def test_jafar_select_faster(self):
        pred = RangePredicate("a", 0, 500)
        cpu_ctx, _ = make_ctx(use_ndp=False)
        ndp_ctx, _ = make_ctx(use_ndp=True)
        cpu = select(cpu_ctx, "t", pred)
        ndp = select(ndp_ctx, "t", pred)
        assert ndp.duration_ps < cpu.duration_ps

    def test_empty_predicate_short_circuits(self):
        ctx, _ = make_ctx()
        result = select(ctx, "t", RangePredicate("a", 10, 5))
        assert result.path == "none"
        assert result.matches == 0
        assert result.duration_ps == 0

    def test_predicated_kernel_option(self):
        ctx, table = make_ctx(cpu_kernel="predicated")
        result = select(ctx, "t", RangePredicate("a", 0, 500))
        expected = ((table["a"].values >= 0) & (table["a"].values <= 500))
        assert result.matches == int(expected.sum())

    def test_expand_bitset_charges_time(self):
        ctx, _ = make_ctx(use_ndp=True)
        result = select(ctx, "t", RangePredicate("a", 0, 500))
        before = ctx.now_ps
        positions = expand_bitset(ctx, result)
        assert ctx.now_ps > before
        assert positions.count() == result.matches

    def test_interpreter_overhead_slows_scan(self):
        plain_ctx, _ = make_ctx()
        taxed_ctx, _ = make_ctx(interpreter_cycles_per_row=50.0)
        pred = RangePredicate("a", 0, 500)
        plain = select(plain_ctx, "t", pred)
        taxed = select(taxed_ctx, "t", pred)
        assert taxed.duration_ps > 3 * plain.duration_ps


class TestProject:
    def test_sparse_fetch_correct(self):
        ctx, table = make_ctx()
        handle = ctx.storage.handle("t", "a")
        positions = PositionList.of(5, 100, 4096)
        result = fetch(ctx, handle, positions)
        assert (result.column.values
                == table["a"].values[[5, 100, 4096]]).all()
        assert result.lines_touched == 3

    def test_dense_fetch_correct(self):
        ctx, table = make_ctx()
        handle = ctx.storage.handle("t", "a")
        positions = PositionList.all_rows(table.num_rows)
        result = fetch(ctx, handle, positions)
        assert (result.column.values == table["a"].values).all()

    def test_dense_cheaper_per_row_than_sparse(self):
        """A dense gather streams; a sparse one pays per-line latency."""
        ctx, table = make_ctx(n=32768)
        handle = ctx.storage.handle("t", "a")
        n = table.num_rows
        dense = fetch(ctx, handle, PositionList.all_rows(n))
        sparse_pos = PositionList(np.arange(0, n, 64, dtype=np.int64))
        sparse = fetch(ctx, handle, sparse_pos)
        dense_per_row = dense.duration_ps / n
        sparse_per_row = sparse.duration_ps / sparse_pos.count()
        assert sparse_per_row > 2 * dense_per_row

    def test_empty_positions(self):
        ctx, _ = make_ctx()
        handle = ctx.storage.handle("t", "a")
        result = fetch(ctx, handle, PositionList(np.empty(0, dtype=np.int64)))
        assert result.column.values.size == 0

    def test_out_of_range_position_raises(self):
        ctx, table = make_ctx()
        handle = ctx.storage.handle("t", "a")
        with pytest.raises(ColumnStoreError):
            fetch(ctx, handle, PositionList.of(table.num_rows))


class TestAggregates:
    def test_scalar_kinds(self):
        ctx, _ = make_ctx()
        values = np.array([4, -2, 10, 10], dtype=np.int64)
        assert scalar_aggregate(ctx, values, AggKind.SUM).value == 22
        assert scalar_aggregate(ctx, values, AggKind.MIN).value == -2
        assert scalar_aggregate(ctx, values, AggKind.MAX).value == 10
        assert scalar_aggregate(ctx, values, AggKind.COUNT).value == 4
        assert scalar_aggregate(ctx, values, AggKind.AVG).value == 5.5

    def test_empty_aggregate(self):
        ctx, _ = make_ctx()
        empty = np.empty(0, dtype=np.int64)
        assert scalar_aggregate(ctx, empty, AggKind.COUNT).value == 0
        with pytest.raises(PlanError):
            scalar_aggregate(ctx, empty, AggKind.SUM)

    def test_group_by_single_key(self):
        ctx, _ = make_ctx()
        keys = np.array([1, 2, 1, 3, 2], dtype=np.int64)
        vals = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        result = group_by(ctx, keys, {"s": (vals, AggKind.SUM),
                                      "c": (vals, AggKind.COUNT),
                                      "m": (vals, AggKind.MIN)})
        assert result.keys.tolist() == [1, 2, 3]
        assert result.aggregates["s"].tolist() == [40, 70, 40]
        assert result.aggregates["c"].tolist() == [2, 2, 1]
        assert result.aggregates["m"].tolist() == [10, 20, 40]

    def test_group_by_composite_key(self):
        ctx, _ = make_ctx()
        keys = np.array([[1, 1], [1, 2], [1, 1]], dtype=np.int64)
        vals = np.ones(3, dtype=np.int64)
        result = group_by(ctx, keys, {"c": (vals, AggKind.COUNT)})
        assert result.num_groups == 2

    def test_group_by_avg_and_max(self):
        ctx, _ = make_ctx()
        keys = np.array([7, 7, 8], dtype=np.int64)
        vals = np.array([2, 4, 9], dtype=np.int64)
        result = group_by(ctx, keys, {"avg": (vals, AggKind.AVG),
                                      "max": (vals, AggKind.MAX)})
        assert result.aggregates["avg"].tolist() == [3.0, 9.0]
        assert result.aggregates["max"].tolist() == [4, 9]

    def test_group_by_validates_lengths(self):
        ctx, _ = make_ctx()
        with pytest.raises(PlanError):
            group_by(ctx, np.array([1, 2], dtype=np.int64),
                     {"s": (np.ones(3, dtype=np.int64), AggKind.SUM)})


class TestJoins:
    def test_hash_join_with_duplicates(self):
        ctx, _ = make_ctx()
        build = np.array([1, 2, 2, 3], dtype=np.int64)
        probe = np.array([2, 4, 1, 2], dtype=np.int64)
        result = hash_join(ctx, build, probe)
        pairs = sorted(zip(result.build_positions.tolist(),
                           result.probe_positions.tolist()))
        # key 2 matches build rows {1,2} x probe rows {0,3}; key 1: (0, 2).
        assert pairs == [(0, 2), (1, 0), (1, 3), (2, 0), (2, 3)]

    def test_join_no_matches(self):
        ctx, _ = make_ctx()
        result = hash_join(ctx, np.array([1], dtype=np.int64),
                           np.array([2], dtype=np.int64))
        assert result.matches == 0

    def test_join_validates_inputs(self):
        ctx, _ = make_ctx()
        with pytest.raises(PlanError):
            hash_join(ctx, np.array([[1]], dtype=np.int64),
                      np.array([1], dtype=np.int64))

    def test_semi_and_anti_join(self):
        ctx, _ = make_ctx()
        probe = np.array([1, 2, 3, 4], dtype=np.int64)
        build = np.array([2, 4, 9], dtype=np.int64)
        assert semi_join_mask(ctx, probe, build).tolist() == [
            False, True, False, True]
        assert semi_join_mask(ctx, probe, build, anti=True).tolist() == [
            True, False, True, False]

    def test_join_charges_time(self):
        ctx, _ = make_ctx()
        before = ctx.now_ps
        hash_join(ctx, np.arange(1000, dtype=np.int64),
                  np.arange(5000, dtype=np.int64))
        assert ctx.now_ps > before
        assert "hash_join" in ctx.profile.times_ps


class TestSort:
    def test_single_key(self):
        ctx, _ = make_ctx()
        keys = np.array([5, 1, 3], dtype=np.int64)
        order = sort_by(ctx, [keys]).order
        assert keys[order].tolist() == [1, 3, 5]

    def test_multi_key_with_descending(self):
        ctx, _ = make_ctx()
        primary = np.array([1, 1, 2], dtype=np.int64)
        secondary = np.array([10, 20, 5], dtype=np.int64)
        order = sort_by(ctx, [primary, secondary],
                        descending=[False, True]).order
        assert order.tolist() == [1, 0, 2]

    def test_top_n(self):
        ctx, _ = make_ctx()
        keys = np.array([5, 9, 1, 7], dtype=np.int64)
        order = top_n(ctx, [keys], 2, descending=[True]).order
        assert keys[order].tolist() == [9, 7]

    def test_validation(self):
        ctx, _ = make_ctx()
        with pytest.raises(PlanError):
            sort_by(ctx, [])
        with pytest.raises(PlanError):
            sort_by(ctx, [np.arange(2), np.arange(3)])
        with pytest.raises(PlanError):
            top_n(ctx, [np.arange(3)], 0)
