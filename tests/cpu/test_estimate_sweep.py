"""The batched cost-model sweep must be bit-identical to single points."""

import pytest

from repro.config import GEM5_PLATFORM, XEON_PLATFORM
from repro.cpu import scan_estimate, scan_estimate_sweep
from repro.dram.timing import SPEED_GRADES
from repro.errors import ConfigError

SELECTIVITIES = tuple(round(0.05 * i, 2) for i in range(21))


@pytest.mark.parametrize("kernel", ("branchy", "predicated"))
@pytest.mark.parametrize("config", (GEM5_PLATFORM, XEON_PLATFORM),
                         ids=lambda c: c.name)
def test_sweep_matches_single_points_bit_exactly(config, kernel):
    timings = config.dram_timings()
    batched = scan_estimate_sweep(config, timings, 100_000, 8,
                                  SELECTIVITIES, kernel)
    for selectivity, estimate in zip(SELECTIVITIES, batched):
        single = scan_estimate(config, timings, 100_000, 8, selectivity,
                               kernel)
        # == on floats here is deliberate: the sweep hoists shared terms but
        # must keep every float expression's operand order, so the results
        # are required to be bit-identical, not merely close.
        assert estimate == single, selectivity


def test_sweep_across_grades():
    for grade_name in SPEED_GRADES:
        config = GEM5_PLATFORM.with_(dram_grade=grade_name)
        timings = config.dram_timings()
        batched = scan_estimate_sweep(config, timings, 4096, 8, (0.0, 1.0))
        assert batched[0] == scan_estimate(config, timings, 4096, 8, 0.0)
        assert batched[1] == scan_estimate(config, timings, 4096, 8, 1.0)


def test_sweep_rejects_bad_args():
    timings = GEM5_PLATFORM.dram_timings()
    with pytest.raises(ConfigError):
        scan_estimate_sweep(GEM5_PLATFORM, timings, 0, 8, (0.5,))
    with pytest.raises(ConfigError):
        scan_estimate_sweep(GEM5_PLATFORM, timings, 100, 8, (0.5,),
                            kernel="vectorized")


def test_empty_sweep_is_empty():
    timings = GEM5_PLATFORM.dram_timings()
    assert scan_estimate_sweep(GEM5_PLATFORM, timings, 100, 8, ()) == []
