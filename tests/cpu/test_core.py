"""Tests for the CPU core timing model."""

import numpy as np
import pytest

from repro.cache import CacheHierarchy, SetAssociativeCache
from repro.config import GEM5_PLATFORM
from repro.cpu import Core
from repro.dram import DRAMGeometry, MemoryController, speed_grade
from repro.errors import ConfigError

GEO = DRAMGeometry(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                   banks_per_rank=8, row_bytes=8192, rows_per_bank=256)


def make_core(prefetch_depth=8):
    timings = speed_grade(GEM5_PLATFORM.dram_grade)
    mc = MemoryController(timings, GEO, refresh_enabled=False)
    hierarchy = CacheHierarchy([
        SetAssociativeCache("L1", 65536, 64, 2, 4),
        SetAssociativeCache("L2", 131072, 64, 8, 12),
    ])
    return Core(GEM5_PLATFORM, mc, hierarchy, prefetch_depth=prefetch_depth)


def test_compute_phase_advances_clock():
    core = make_core()
    stats = core.compute_phase(1000)
    assert stats.duration_ps == 1000 * core.clock.period_ps
    assert core.now_ps == stats.end_ps


def test_cycles_for_uops_uses_ipc():
    core = make_core()
    assert core.cycles_for_uops(10) == pytest.approx(10 / core.cost.ipc)


def test_stream_phase_compute_bound():
    """With heavy per-line compute, duration approaches pure compute time."""
    core = make_core()
    nlines = 64
    stats = core.stream_read_phase(0, nlines * 64, cycles_per_line=500.0)
    compute_ps = core.clock.cycles_to_ps(500.0 * nlines)
    assert stats.duration_ps == pytest.approx(compute_ps, rel=0.1)
    assert stats.lines_read == nlines


def test_stream_phase_memory_bound():
    """With trivial compute, duration approaches the DRAM streaming rate."""
    core = make_core()
    nlines = 128
    stats = core.stream_read_phase(0, nlines * 64, cycles_per_line=0.1)
    timings = core.controller.timings
    floor_ps = nlines * timings.cycles_to_ps(timings.tccd)
    assert stats.duration_ps >= floor_ps * 0.9
    assert stats.stall_ps > 0


def test_prefetch_depth_hides_latency():
    deep = make_core(prefetch_depth=16)
    shallow = make_core(prefetch_depth=1)
    deep_stats = deep.stream_read_phase(0, 256 * 64, cycles_per_line=5.0)
    shallow_stats = shallow.stream_read_phase(0, 256 * 64, cycles_per_line=5.0)
    assert deep_stats.duration_ps < shallow_stats.duration_ps


def test_stream_phase_emits_write_traffic():
    core = make_core()
    stats = core.stream_read_phase(0, 64 * 64, cycles_per_line=10.0,
                                   write_bytes_per_line=32.0)
    # 64 lines x 32 B = 2048 B = 32 lines of output.
    assert stats.lines_written == 32
    assert core.controller.counters.writes.value == 32


def test_partial_write_backlog_flushes():
    core = make_core()
    stats = core.stream_read_phase(0, 3 * 64, cycles_per_line=10.0,
                                   write_bytes_per_line=10.0)
    assert stats.lines_written == 1  # 30 B rounds up to one line


def test_per_line_cycle_array():
    core = make_core()
    cycles = np.array([100.0, 0.0, 0.0, 0.0])
    stats = core.stream_read_phase(0, 4 * 64, cycles_per_line=cycles)
    assert stats.compute_cycles == pytest.approx(100.0)


def test_random_phase_dependent_is_slower_than_independent():
    addr_space = GEO.total_bytes
    rng = np.random.default_rng(7)
    addrs = rng.integers(0, addr_space // 64, size=300) * 64
    dep = make_core()
    indep = make_core()
    t_dep = dep.random_read_phase(addrs, cycles_per_access=2.0,
                                  dependent=True).duration_ps
    t_indep = indep.random_read_phase(addrs, cycles_per_access=2.0,
                                      dependent=False).duration_ps
    assert t_dep > t_indep


def test_random_phase_cached_addresses_cause_no_dram_traffic():
    core = make_core()
    addrs = np.zeros(50, dtype=np.int64)  # same line every time
    stats = core.random_read_phase(addrs, cycles_per_access=1.0)
    assert stats.lines_read == 1  # only the cold miss


def test_random_phase_empty_is_noop():
    core = make_core()
    stats = core.random_read_phase(np.array([]), 1.0)
    assert stats.duration_ps == 0


def test_invalid_arguments():
    core = make_core()
    with pytest.raises(ConfigError):
        core.stream_read_phase(0, 0, 1.0)
    with pytest.raises(ConfigError):
        core.random_read_phase(np.array([0]), -1.0)
    with pytest.raises(ConfigError):
        core.advance_cycles(-1)
    with pytest.raises(ConfigError):
        core.advance_ps(-1)
