"""Tests for the µop bundle vocabulary."""

import pytest

from repro.config import CPUCostModel
from repro.cpu import BRANCHY_MATCH_EXTRA, BRANCHY_ROW, PREDICATED_ROW, UopBundle, UopKind
from repro.errors import ConfigError


def test_bundle_of_and_counts():
    bundle = UopBundle.of(load=1, cmp=2, branch=1)
    assert bundle.total == 4
    assert bundle.count(UopKind.CMP) == 2
    assert bundle.count(UopKind.STORE) == 0


def test_bundle_addition_merges_kinds():
    merged = UopBundle.of(load=1, alu=1) + UopBundle.of(alu=2, store=1)
    assert merged.total == 5
    assert merged.count(UopKind.ALU) == 3
    assert merged.count(UopKind.LOAD) == 1


def test_bundle_scaling():
    assert UopBundle.of(alu=2).scaled(4).total == 8
    assert UopBundle.of(alu=2).scaled(0).total == 0
    with pytest.raises(ConfigError):
        UopBundle.of(alu=1).scaled(-1)


def test_negative_count_rejected():
    with pytest.raises(ConfigError):
        UopBundle.of(load=-1)


def test_default_bundles_match_config_defaults():
    """The documented µop mixes must equal the tunable config defaults —
    if one changes, the other must follow (DESIGN.md calibration table)."""
    cost = CPUCostModel()
    assert BRANCHY_ROW.total == cost.base_uops
    assert BRANCHY_MATCH_EXTRA.total == cost.match_uops
    assert PREDICATED_ROW.total == cost.predicated_uops


def test_branchy_row_mix():
    assert BRANCHY_ROW.count(UopKind.LOAD) == 1
    assert BRANCHY_ROW.count(UopKind.CMP) == 1
    assert BRANCHY_ROW.count(UopKind.BRANCH) == 2
    assert BRANCHY_MATCH_EXTRA.count(UopKind.STORE) == 1
    assert PREDICATED_ROW.count(UopKind.BRANCH) == 1  # loop edge only
