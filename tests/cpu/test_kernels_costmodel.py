"""Tests for the CPU select kernels and the analytic cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GEM5_PLATFORM
from repro.cpu import (
    branchy_cycles_per_row,
    branchy_select,
    mispredict_rate,
    predicated_cycles_per_row,
    predicated_select,
    range_mask,
    scan_estimate,
)
from repro.errors import ConfigError, TypeMismatchError
from repro.dram import speed_grade
from tests.cpu.test_core import make_core


def make_column(n=4096, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1_000_000, size=n, dtype=np.int64)


class TestRangeMask:
    def test_inclusive_bounds(self):
        values = np.array([1, 5, 10], dtype=np.int64)
        assert range_mask(values, 5, 10).tolist() == [False, True, True]

    def test_rejects_floats(self):
        with pytest.raises(TypeMismatchError):
            range_mask(np.array([1.5]), 0, 1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=100),
           st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_matches_python_semantics(self, values, a, b):
        low, high = min(a, b), max(a, b)
        arr = np.array(values, dtype=np.int64)
        expected = [low <= v <= high for v in values]
        assert range_mask(arr, low, high).tolist() == expected


class TestKernels:
    def test_both_kernels_agree_functionally(self):
        values = make_column()
        r1 = branchy_select(make_core(), values, 0, 100_000, 500_000)
        r2 = predicated_select(make_core(), values, 0, 100_000, 500_000)
        assert (r1.positions == r2.positions).all()
        expected = np.flatnonzero((values >= 100_000) & (values <= 500_000))
        assert (r1.positions == expected).all()

    def test_branchy_time_grows_with_selectivity(self):
        """§3.2: the CPU executes additional code to record matches, so
        scan time rises with selectivity."""
        values = make_column(8192)
        t_low = branchy_select(make_core(), values, 0, 0, 10_000).time_ps
        t_high = branchy_select(make_core(), values, 0, 0, 990_000).time_ps
        assert t_high > t_low * 1.2

    def test_predicated_time_is_selectivity_stable(self):
        """Predicated compute is selectivity-free; only the position-list
        write bandwidth grows, so the total varies far less than branchy."""
        values = make_column(8192)
        p_low = predicated_select(make_core(), values, 0, 0, 10_000)
        p_high = predicated_select(make_core(), values, 0, 0, 990_000)
        assert p_high.phase.compute_cycles == pytest.approx(
            p_low.phase.compute_cycles, rel=1e-6)
        assert p_high.time_ps < p_low.time_ps * 1.5
        b_low = branchy_select(make_core(), values, 0, 0, 10_000).time_ps
        b_high = branchy_select(make_core(), values, 0, 0, 990_000).time_ps
        assert (p_high.time_ps / p_low.time_ps) < (b_high / b_low)

    def test_predicated_beats_branchy_at_mid_selectivity_eventually(self):
        """At ~50% selectivity the branchy kernel eats mispredicts; the
        predicated kernel's fixed cost should be competitive."""
        values = make_column(8192)
        branchy = branchy_select(make_core(), values, 0, 0, 500_000).time_ps
        pred = predicated_select(make_core(), values, 0, 0, 500_000).time_ps
        assert pred < branchy * 1.3

    def test_empty_and_full_selectivity_results(self):
        values = make_column(1024)
        none = branchy_select(make_core(), values, 0, -10, -5)
        assert none.num_matches == 0
        everything = branchy_select(make_core(), values, 0, 0, 10_000_000)
        assert everything.num_matches == 1024


class TestCostModel:
    def test_mispredict_rate_shape(self):
        assert mispredict_rate(0.0) == 0.0
        assert mispredict_rate(1.0) == 0.0
        assert mispredict_rate(0.5) == pytest.approx(0.5)
        with pytest.raises(ConfigError):
            mispredict_rate(1.5)

    def test_branchy_cycles_monotone_near_extremes(self):
        cost = GEM5_PLATFORM.cpu_cost
        assert branchy_cycles_per_row(cost, 0.0) < branchy_cycles_per_row(cost, 1.0)

    def test_predicated_flat(self):
        cost = GEM5_PLATFORM.cpu_cost
        assert predicated_cycles_per_row(cost) > 0

    def test_scan_estimate_reports_bound(self):
        timings = speed_grade(GEM5_PLATFORM.dram_grade)
        est = scan_estimate(GEM5_PLATFORM, timings, nrows=1 << 20,
                            word_bytes=8, selectivity=0.5)
        assert est.total_ps > 0
        assert est.bound in ("compute", "memory")

    def test_scan_estimate_validation(self):
        timings = speed_grade(GEM5_PLATFORM.dram_grade)
        with pytest.raises(ConfigError):
            scan_estimate(GEM5_PLATFORM, timings, 0, 8, 0.5)
        with pytest.raises(ConfigError):
            scan_estimate(GEM5_PLATFORM, timings, 10, 8, 0.5, kernel="simd")
