"""Cross-layer causality on a real Figure-3 point: operator, JAFAR device,
memory controller, and DRAM bank spans all share one trace id, in both
fast-forward and exact modes."""

import pytest

from repro.analysis import measure_point
from repro.obs.tracer import tracing
from repro.sim import fastforward as ffm

ROWS = 1 << 13

#: Track suffix -> the simulated layer it belongs to.
LAYER_OF = {
    "query": "operator",
    "driver": "driver",
    "cpu": "cpu",
    "imc": "controller",
}


def _trace_point(exact: bool):
    with tracing() as tracer:
        if exact:
            with ffm.exact_mode():
                point = measure_point(0.5, ROWS)
        else:
            point = measure_point(0.5, ROWS)
        tracer.flush()
    return tracer, point


def _layers(tracer):
    seen = set()
    for event in tracer.events:
        track = event.track
        if ".jafar." in track:
            seen.add("device")
        elif ".bank" in track:
            seen.add("bank")
        else:
            layer = LAYER_OF.get(track.rpartition(".")[2])
            if layer:
                seen.add(layer)
    return seen


@pytest.mark.parametrize("exact", [False, True], ids=["fast-forward", "exact"])
class TestCausalPropagation:
    def test_one_trace_id_spans_all_four_layers(self, exact):
        tracer, _ = _trace_point(exact)
        trace_ids = {e.trace_id for e in tracer.events}
        assert trace_ids == {1}, "every event inherits the root's trace id"
        assert {"operator", "device", "controller",
                "bank"} <= _layers(tracer)

    def test_stack_balanced_and_spans_well_formed(self, exact):
        tracer, _ = _trace_point(exact)
        assert tracer.depth == 0
        open_spans = {}
        for event in tracer.events:
            if event.ph == "B":
                open_spans[event.span_id] = event
            elif event.ph == "E":
                begin = open_spans.pop(event.span_id)
                assert event.ts_ps >= begin.ts_ps
                assert event.track == begin.track
            elif event.ph == "X":
                assert event.dur_ps >= 0
        assert open_spans == {}, "every B has a matching E"

    def test_parent_ids_resolve_within_the_trace(self, exact):
        tracer, _ = _trace_point(exact)
        span_ids = {e.span_id for e in tracer.events if e.ph == "B"}
        for event in tracer.events:
            if event.parent_id:
                assert event.parent_id in span_ids

    def test_nothing_dropped_at_this_scale(self, exact):
        tracer, _ = _trace_point(exact)
        assert tracer.dropped == 0
        assert tracer.events


class TestFastForwardSpans:
    def test_skipped_epochs_emit_ff_summary_spans(self):
        if not ffm.FF.on:
            pytest.skip("fast-forward disabled (REPRO_EXACT or simsan)")
        tracer, _ = _trace_point(exact=False)
        ff_spans = [e for e in tracer.events
                    if e.args and e.args.get("ff") is True]
        assert ff_spans, "fast-forwarded work must appear as ff=True spans"
        names = {e.name for e in ff_spans}
        assert names <= {"jafar.ff_skip", "jafar.fused_row",
                         "cpu.ff_skip", "imc.fused_stream"}
        assert all(e.ph == "X" for e in ff_spans)

    def test_exact_mode_has_no_ff_spans(self):
        tracer, _ = _trace_point(exact=True)
        assert not any(e.args and e.args.get("ff") for e in tracer.events)

    def test_modes_agree_on_simulated_results(self):
        _, ff_point = _trace_point(exact=False)
        _, exact_point = _trace_point(exact=True)
        assert ff_point.cpu_ps == exact_point.cpu_ps
        assert ff_point.jafar_ps == exact_point.jafar_ps
        assert ff_point.matches == exact_point.matches
