"""Shared guard: no test may leak an installed tracer to its neighbours.

When the whole suite runs with ``REPRO_TRACE=1`` the process-wide tracer is
legitimately on at entry; these tests manage their own tracers, so the
fixture detaches it either way and the leak assert only applies when the
environment did not enable tracing itself.
"""

import os

import pytest

from repro.obs.tracer import ENV_VAR, TRACE


@pytest.fixture(autouse=True)
def _trace_off_around_each_test():
    env_traced = os.environ.get(ENV_VAR, "") not in ("", "0")
    if not env_traced:
        assert not TRACE.on, "tracer leaked into this test"
    TRACE.disable()
    yield
    TRACE.disable()
