"""The zero-perturbation invariant: tracing never moves a simulated value.

Two independent proofs:

* ``repro.obs.check.verify_point`` runs one benchmark point untraced and
  traced and deep-diffs the simulated payloads — in fast-forward and exact
  modes alike the diff must be empty;
* the golden cases themselves, re-evaluated inside ``tracing()``, must still
  equal ``golden_values.json`` bit for bit.
"""

import json

import pytest

from repro.bench.configs import SweepConfig
from repro.obs.check import deep_diff, verify_point
from repro.obs.tracer import TRACE, tracing
from repro.sim import fastforward as ffm

from ..golden.cases import CASES
from ..golden.regen import GOLDEN_PATH


class TestDeepDiff:
    def test_equal_values_yield_no_diff(self):
        assert deep_diff({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}) == []

    def test_differences_are_located_by_path(self):
        diffs = deep_diff({"a": [1, 2]}, {"a": [1, 3]})
        assert len(diffs) == 1
        assert "$.a[1]" in diffs[0]

    def test_type_and_shape_mismatches_reported(self):
        assert deep_diff({"a": 1}, {"a": "1"})
        assert deep_diff([1], [1, 2])
        assert deep_diff({"a": 1}, {"b": 1})


@pytest.mark.parametrize("exact", [False, True], ids=["fast-forward", "exact"])
def test_traced_point_bit_identical_to_untraced(exact):
    config = SweepConfig("fig3_point", rows=1 << 13, selectivity=0.5)
    diffs, tracer = verify_point(config, exact=exact)
    assert diffs == [], "\n".join(diffs)
    assert tracer.events, "the traced run must actually have recorded spans"
    # The timeline sampler rides the tracer, so the empty diff above also
    # proves sampling-on == sampling-off; the traced leg must really have
    # sampled (otherwise the claim is vacuous).
    assert not tracer.timeline.empty, "the traced run must have sampled"
    assert not TRACE.on, "verify_point must uninstall its tracer"


class TestGoldensUnderTracing:
    """The strongest pin: the exact golden numbers, traced."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    def test_fig3_small_unchanged_fast_forwarded(self, golden):
        with tracing() as tracer:
            assert CASES["fig3_small"]() == golden["fig3_small"]
        if ffm.FF.on:  # forced off under REPRO_EXACT / simsan
            assert any(e.args and e.args.get("ff") for e in tracer.events), (
                "the fast-forwarded golden run should contain ff=True spans")

    def test_fig3_predicated_unchanged_exact(self, golden):
        with tracing() as tracer:
            with ffm.exact_mode():
                assert CASES["fig3_predicated"]() == golden["fig3_predicated"]
        assert tracer.events

    def test_goldens_unchanged_with_sampling_active(self, golden, engine):
        """Sampling on, both backends (``engine`` fixture), FF and exact:
        the golden numbers must not move, and windows must be recorded."""
        with tracing() as tracer:
            assert CASES["fig3_small"]() == golden["fig3_small"]
            with ffm.exact_mode():
                assert CASES["fig3_predicated"]() == golden["fig3_predicated"]
        assert not tracer.timeline.empty
        summary = tracer.timeline.summary()
        assert any(m["origins"]["cpu"]["busy_ps"] > 0
                   for m in summary["machines"].values())
