"""MetricsRegistry unit tests and the IMCCounters/FFStats migrations."""

import pytest

from repro.dram import DDR3_1600
from repro.dram.counters import IMCCounters
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.sim.fastforward import FFStats
from repro.sim.stats import Counter


class TestRegistry:
    def test_factories_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("imc.reads") is reg.counter("imc.reads")
        assert reg.histogram("imc.lat_ps") is reg.histogram("imc.lat_ps")
        assert reg.busy_tracker("imc.rq") is reg.busy_tracker("imc.rq")

    def test_cross_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(SimulationError):
            reg.histogram("x")

    def test_gauge_collisions_raise_both_ways(self):
        reg = MetricsRegistry()
        reg.gauge("g", lambda: 1)
        with pytest.raises(SimulationError):
            reg.gauge("g", lambda: 2)
        with pytest.raises(SimulationError):
            reg.counter("g")
        reg.counter("c")
        with pytest.raises(SimulationError):
            reg.gauge("c", lambda: 3)

    def test_attach_adopts_instrument_under_its_own_name(self):
        reg = MetricsRegistry()
        counter = Counter("adopted")  # analyze: allow[direct-instrument]
        reg.attach(counter)
        assert reg.get("adopted") is counter
        reg.attach(counter)  # re-attaching the same object is fine
        other = Counter("adopted")  # analyze: allow[direct-instrument]
        with pytest.raises(SimulationError):
            reg.attach(other)

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").add(2)
        reg.histogram("a.lat").record(8)
        reg.gauge("c.val", lambda: 7)
        snap = reg.snapshot()
        assert list(snap) == ["a.lat", "b.count", "c.val"]
        assert snap["a.lat"]["type"] == "histogram"
        assert snap["b.count"] == {"type": "counter", "value": 2}
        assert snap["c.val"] == {"type": "gauge", "value": 7}

    def test_gauges_are_read_at_snapshot_time(self):
        reg = MetricsRegistry()
        box = [1]
        reg.gauge("live", lambda: box[0])
        assert reg.snapshot()["live"]["value"] == 1
        box[0] = 42
        assert reg.snapshot()["live"]["value"] == 42

    def test_names_covers_instruments_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b", lambda: 0)
        assert reg.names() == ["a", "b"]


class TestIMCCountersMigration:
    def test_counters_register_into_supplied_registry(self):
        reg = MetricsRegistry()
        counters = IMCCounters(DDR3_1600, reg)
        assert counters.metrics is reg
        assert {"imc.reads", "imc.writes", "imc.read_latency_ps",
                "imc.row_hits", "imc.row_misses", "imc.read_queue",
                "imc.write_queue", "imc.any_queue"} <= set(reg.names())
        assert counters.reads is reg.get("imc.reads")

    def test_default_registry_created_when_omitted(self):
        counters = IMCCounters(DDR3_1600)
        assert isinstance(counters.metrics, MetricsRegistry)
        snap = counters.metrics.snapshot()
        assert snap["imc.reads"]["type"] == "counter"


class TestFFStatsMigration:
    def test_snapshot_schema(self):
        stats = FFStats()
        stats.skips += 2
        stats.skipped_events += 10
        snap = stats.snapshot()
        assert snap["type"] == "ff_stats"
        assert snap["skips"] == 2
        assert snap["skipped_events"] == 10

    def test_register_into_exposes_live_gauges(self):
        stats = FFStats()
        reg = MetricsRegistry()
        stats.register_into(reg)
        assert reg.snapshot()["ff.skips"]["value"] == 0
        stats.skips = 5
        assert reg.snapshot()["ff.skips"]["value"] == 5
