"""The timeline sampler: window algebra, origin attribution, counter export.

Three layers of coverage:

* unit tests drive :class:`TimelineSampler` directly and pin the window
  algebra — exact splitting of spans across window boundaries, proportional
  distribution of synthesized occupancy, idle-gap tracking and the honesty
  counters (gap breaks, dropped windows);
* attribution tests run a traced fig3 point and check that all four hook
  layers land in the right origin buckets — ``jafar`` (device direct taps),
  ``cpu`` (controller/rank path and FF-synthesized executor samples),
  ``refresh`` (tRFC windows) — on the right machines;
* export tests pin the Perfetto counter-track schema and its JSON roundtrip
  against the ``timeline`` CLI report.
"""

import json

import pytest

from repro.bench.configs import SweepConfig
from repro.obs.export import chrome_trace
from repro.obs.timeline import (
    DEFAULT_WINDOW_PS,
    TimelineSampler,
    counter_inventory,
    render_timeline,
)
from repro.obs.tracer import SpanTracer, tracing
from repro.sim import fastforward as ffm


def _sampler(window_ps=1000):
    tracer = SpanTracer()
    sampler = TimelineSampler(tracer, window_ps=window_ps)
    rank = object()
    tracer._tracks[id(rank)] = "m0.dram.ch0.dimm0.rank0"
    ctrl = object()
    tracer._tracks[id(ctrl)] = "m0.imc"
    return sampler, rank, ctrl


class TestWindowAlgebra:
    def test_span_inside_one_window(self):
        sampler, rank, _ = _sampler()
        sampler.bus(rank, "cpu", 100, 400)
        summary = sampler.summary()
        m = summary["machines"]["m0"]
        assert m["windows"] == [[0, 300, 0, 0, 0, 0, 0, 0, 0]]
        assert m["origins"]["cpu"]["busy_ps"] == 300

    def test_span_straddling_window_boundary_splits_exactly(self):
        sampler, rank, _ = _sampler(window_ps=1000)
        sampler.bus(rank, "cpu", 800, 2300)
        windows = sampler.summary()["machines"]["m0"]["windows"]
        # [800,1000) + [1000,2000) + [2000,2300): 200 + 1000 + 300 ps.
        assert [(w[0], w[1]) for w in windows] == [(0, 200), (1, 1000),
                                                   (2, 300)]

    def test_refresh_straddle_attributed_to_refresh_slot(self):
        # A tRFC window crossing a sampling boundary — the satellite's
        # "sample straddling tREFI refresh" edge case at unit scale.
        sampler, rank, _ = _sampler(window_ps=1000)
        sampler.bus(rank, "refresh", 900, 1260)
        windows = sampler.summary()["machines"]["m0"]["windows"]
        assert [(w[0], w[3]) for w in windows] == [(0, 100), (1, 260)]
        assert sampler.summary()["machines"]["m0"]["origins"]["refresh"][
            "busy_ps"] == 360

    def test_zero_length_span_ignored(self):
        sampler, rank, _ = _sampler()
        sampler.bus(rank, "cpu", 500, 500)
        assert sampler.empty

    def test_queue_residency_and_request_counts(self):
        sampler, _, ctrl = _sampler(window_ps=1000)
        sampler.queue(ctrl, False, 100, 600)   # read, 500 ps residency
        sampler.queue(ctrl, True, 1900, 2100)  # write straddling a boundary
        m = sampler.summary()["machines"]["m0"]
        assert m["queue"]["reads"] == 1
        assert m["queue"]["writes"] == 1
        by_idx = {w[0]: w for w in m["windows"]}
        assert by_idx[0][5] == 500           # read-queue ps, slot RQ
        assert by_idx[1][6] == 100           # write-queue ps split
        assert by_idx[2][6] == 100

    def test_idle_gaps_exact_and_percentiles(self):
        sampler, rank, _ = _sampler()
        sampler.bus(rank, "cpu", 0, 100)
        sampler.bus(rank, "cpu", 200, 300)    # gap 100
        sampler.bus(rank, "cpu", 700, 800)    # gap 400
        idle = sampler.summary()["machines"]["m0"]["idle"]
        assert idle["count"] == 2
        assert idle["p50_ps"] == 100
        assert idle["p95_ps"] == 400
        assert idle["longest_ps"] == 400
        assert idle["total_ps"] == 500

    def test_synth_distributes_busy_proportionally(self):
        sampler, _, _ = _sampler(window_ps=1000)
        # 900 busy ps over [500, 2500): overlaps 500/1000/500 → shares
        # 225/450/225 (integer split, remainder to the last window).
        sampler.synth("m0.cpu", "cpu", 500, 2000, 900, reads=10)
        m = sampler.summary()["machines"]["m0"]
        shares = [(w[0], w[1], w[4]) for w in m["windows"]]
        assert shares == [(0, 225, 225), (1, 450, 450), (2, 225, 225)]
        assert m["origins"]["cpu"]["busy_ps"] == 900
        assert m["synth"]["busy_ps"] == 900
        assert m["queue"]["reads"] == 10

    def test_synth_breaks_idle_gap_tracking(self):
        sampler, rank, _ = _sampler()
        sampler.bus(rank, "cpu", 0, 100)
        sampler.synth("m0.cpu", "cpu", 100, 400, 200)
        sampler.bus(rank, "cpu", 900, 1000)
        m = sampler.summary()["machines"]["m0"]
        assert m["synth"]["gap_breaks"] == 1
        # The 500..900 gap after the synth span counts; nothing inside it.
        assert m["idle"]["count"] == 1
        assert m["idle"]["longest_ps"] == 400

    def test_window_cap_drops_and_counts(self):
        sampler, rank, _ = _sampler(window_ps=10)
        sampler.max_windows = sampler._window_budget = 2
        sampler.bus(rank, "cpu", 0, 50)  # needs 5 windows
        assert sampler.dropped_windows > 0
        summary = sampler.summary()
        assert summary["dropped_windows"] == sampler.dropped_windows

    def test_per_rank_tracks_recorded(self):
        sampler, rank, _ = _sampler()
        sampler.bus(rank, "jafar", 0, 1500)
        ranks = sampler.summary()["machines"]["m0"]["ranks"]
        assert list(ranks) == ["dram.ch0.dimm0.rank0"]
        assert ranks["dram.ch0.dimm0.rank0"] == [[0, 1000], [1, 500]]


class TestAttribution:
    """Per-origin attribution across the four hook layers, end to end."""

    @pytest.fixture(scope="class")
    def traced_summary(self):
        from repro.bench.runner import execute

        with tracing() as tracer:
            execute(SweepConfig("fig3_point", rows=1 << 13, selectivity=0.5))
        return tracer.timeline.summary()

    def test_machines_split_jafar_and_cpu(self, traced_summary):
        machines = traced_summary["machines"]
        # m0 = JAFAR machine, m1 = CPU machine (measure_point build order).
        assert machines["m0"]["origins"]["jafar"]["busy_ps"] > 0
        assert machines["m0"]["origins"]["cpu"]["busy_ps"] == 0
        assert machines["m1"]["origins"]["cpu"]["busy_ps"] > 0
        assert machines["m1"]["origins"]["jafar"]["busy_ps"] == 0

    def test_refresh_traffic_attributed(self, traced_summary):
        # The CPU scan is long enough to cross several tREFI deadlines.
        assert traced_summary["machines"]["m1"]["origins"]["refresh"][
            "busy_ps"] > 0

    def test_ff_synthesized_samples_flagged(self, traced_summary):
        if not ffm.FF.on:
            pytest.skip("fast-forward disabled in this environment")
        assert any(m["synth"]["busy_ps"] > 0
                   for m in traced_summary["machines"].values())

    def test_exact_mode_has_no_synth_samples(self):
        from repro.bench.runner import execute

        with tracing() as tracer:
            with ffm.exact_mode():
                execute(SweepConfig("fig3_point", rows=1 << 12,
                                    selectivity=0.5))
        summary = tracer.timeline.summary()
        assert summary["machines"]
        for m in summary["machines"].values():
            assert m["synth"]["busy_ps"] == 0
            assert m["synth"]["gap_breaks"] == 0

    def test_bus_share_sums_to_100(self, traced_summary):
        for m in traced_summary["machines"].values():
            total = sum(m["origins"][o]["bus_share_pct"]
                        for o in ("cpu", "jafar", "refresh"))
            assert total == pytest.approx(100.0)


class TestCounterExport:
    @pytest.fixture(scope="class")
    def doc(self):
        from repro.bench.runner import execute

        with tracing() as tracer:
            execute(SweepConfig("fig3_point", rows=1 << 13, selectivity=0.5))
        return chrome_trace(tracer)

    def test_counter_series_present(self, doc):
        names = {(e["pid"], e["name"]) for e in doc["traceEvents"]
                 if e["ph"] == "C"}
        series = {name for _, name in names}
        assert "bus_util_pct" in series
        assert "queue_depth" in series
        assert any(name.startswith("busy_pct.") for name in series)

    def test_inventory_matches_event_stream(self, doc):
        counts: dict[str, int] = {}
        processes = {e["pid"]: e["args"]["name"]
                     for e in doc["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "process_name"}
        for event in doc["traceEvents"]:
            if event["ph"] != "C":
                continue
            key = f"{processes[event['pid']]}.{event['name']}"
            counts[key] = counts.get(key, 0) + 1
        assert counts == doc["metadata"]["counter_tracks"]
        assert counts == counter_inventory(doc["timeline"])

    def test_counter_args_are_stacked_origin_series(self, doc):
        sample = next(e for e in doc["traceEvents"]
                      if e["ph"] == "C" and e["name"] == "bus_util_pct")
        assert set(sample["args"]) == {"cpu", "jafar", "refresh", "synth"}
        depth = next(e for e in doc["traceEvents"]
                     if e["ph"] == "C" and e["name"] == "queue_depth")
        assert set(depth["args"]) == {"read", "write"}

    def test_timeline_section_roundtrips_through_json(self, doc):
        reloaded = json.loads(json.dumps(doc))
        assert reloaded["timeline"] == doc["timeline"]
        report = render_timeline(reloaded["timeline"])
        assert "data-bus utilisation" in report
        assert "idle gaps" in report

    def test_render_covers_origins_and_percentiles(self, doc):
        report = render_timeline(doc["timeline"])
        assert "cpu" in report
        assert "p50" in report and "p95" in report

    def test_window_width_is_simulated_time(self, doc):
        assert doc["timeline"]["window_ps"] == DEFAULT_WINDOW_PS


class TestCli:
    def test_timeline_command_renders_and_writes_json(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace_path = tmp_path / "point.trace.json"
        out_path = tmp_path / "point.timeline.json"
        assert main(["trace", "--rows", "8192", "--no-summary",
                     "--out", str(trace_path)]) == 0
        assert main(["timeline", str(trace_path),
                     "--json", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "data-bus utilisation" in text
        summary = json.loads(out_path.read_text())
        assert summary["machines"]

    def test_timeline_command_rejects_counterless_doc(self, tmp_path):
        from repro.obs.cli import main

        path = tmp_path / "empty.trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["timeline", str(path)]) == 1
