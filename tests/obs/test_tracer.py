"""Span tracer unit tests: nesting/ordering invariants, causal IDs, the
event cap, DRAM row windows, and the process-wide switch."""

import pytest

from repro.errors import SimulationError
from repro.obs.tracer import MAX_EVENTS, TRACE, SpanTracer, TraceState, tracing


class TestSpanNesting:
    def test_begin_end_pair_shares_ids(self):
        tracer = SpanTracer()
        span_id = tracer.begin("outer", "t", 100)
        tracer.end(250)
        begin, end = tracer.events
        assert (begin.ph, end.ph) == ("B", "E")
        assert begin.span_id == end.span_id == span_id
        assert begin.trace_id == end.trace_id != 0
        assert begin.ts_ps == 100 and end.ts_ps == 250
        assert tracer.depth == 0

    def test_nested_spans_inherit_trace_id_and_parent(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer", "t", 0)
        inner = tracer.begin("inner", "t", 10)
        tracer.end(20)
        tracer.end(30)
        events = {(e.ph, e.name): e for e in tracer.events}
        assert events[("B", "inner")].parent_id == outer
        assert events[("B", "inner")].trace_id == events[("B", "outer")].trace_id
        assert events[("B", "outer")].parent_id == 0
        assert inner != outer

    def test_depth_zero_begins_start_fresh_traces(self):
        tracer = SpanTracer()
        tracer.begin("first", "t", 0)
        tracer.end(1)
        tracer.begin("second", "t", 0)
        tracer.end(1)
        trace_ids = {e.trace_id for e in tracer.events if e.ph == "B"}
        assert len(trace_ids) == 2

    def test_complete_and_instant_inherit_innermost_context(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer", "t", 0)
        tracer.complete("work", "u", 5, 10, detail=1)
        tracer.instant("mark", "u", 7)
        tracer.end(20)
        x = next(e for e in tracer.events if e.ph == "X")
        i = next(e for e in tracer.events if e.ph == "I")
        assert x.parent_id == outer and i.parent_id == outer
        assert x.trace_id == i.trace_id != 0
        assert x.dur_ps == 10

    def test_end_uses_latest_timestamp_when_none(self):
        tracer = SpanTracer()
        tracer.begin("root", "t", 0)
        tracer.complete("late", "u", 100, 50)
        tracer.end(None)
        end = tracer.events[-1]
        assert end.ph == "E" and end.ts_ps == 150

    def test_negative_begin_timestamp_raises(self):
        with pytest.raises(SimulationError):
            SpanTracer().begin("x", "t", -1)

    def test_end_without_open_span_raises(self):
        with pytest.raises(SimulationError):
            SpanTracer().end(0)

    def test_end_before_begin_raises(self):
        tracer = SpanTracer()
        tracer.begin("x", "t", 100)
        with pytest.raises(SimulationError):
            tracer.end(99)

    def test_negative_duration_raises(self):
        with pytest.raises(SimulationError):
            SpanTracer().complete("x", "t", 0, -1)


class TestEventCap:
    def test_overflow_drops_and_counts_instead_of_raising(self):
        tracer = SpanTracer(max_events=2)
        tracer.complete("a", "t", 0, 1)
        tracer.complete("b", "t", 1, 1)
        tracer.complete("c", "t", 2, 1)
        tracer.instant("d", "t", 3)
        assert len(tracer.events) == 2
        assert tracer.dropped == 2

    def test_dropped_events_still_advance_max_ts(self):
        tracer = SpanTracer(max_events=1)
        tracer.complete("a", "t", 0, 1)
        tracer.complete("b", "t", 100, 50)
        assert tracer.max_ts_ps == 150

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            SpanTracer(max_events=0)


class TestTracks:
    def test_track_of_is_stable_per_object(self):
        tracer = SpanTracer()
        obj = object()
        assert tracer.track_of(obj, "imc") == tracer.track_of(obj, "other")

    def test_root_track_names_never_collide(self):
        tracer = SpanTracer()
        first = tracer.root_track("fig3")
        second = tracer.root_track("fig3")
        assert first == "fig3"
        assert second == "fig3#2"


class TestRowWindows:
    def test_act_then_precharge_emits_row_span(self):
        tracer = SpanTracer()
        rank = object()
        tracer.bank_access(rank, 3, row=7, pre_ps=None, act_ps=1000)
        tracer.bank_precharge(rank, 3, 2500)
        (event,) = tracer.events
        assert event.ph == "X" and event.name == "row 7"
        assert event.ts_ps == 1000 and event.dur_ps == 1500
        assert event.track.endswith(".bank3")

    def test_pre_closes_previous_window_before_act_opens_next(self):
        tracer = SpanTracer()
        rank = object()
        tracer.bank_access(rank, 0, row=1, pre_ps=None, act_ps=0)
        tracer.bank_access(rank, 0, row=2, pre_ps=500, act_ps=600)
        tracer.flush()
        rows = [e.name for e in tracer.events if e.ph == "X"]
        assert rows == ["row 1", "row 2"]
        first = tracer.events[0]
        assert first.ts_ps == 0 and first.dur_ps == 500

    def test_refresh_closes_all_rank_windows_and_marks_instant(self):
        tracer = SpanTracer()
        rank, other = object(), object()
        tracer.bank_access(rank, 0, row=1, pre_ps=None, act_ps=0)
        tracer.bank_access(rank, 1, row=2, pre_ps=None, act_ps=0)
        tracer.bank_access(other, 0, row=3, pre_ps=None, act_ps=0)
        tracer.rank_refresh(rank, 1000)
        closed = {e.name for e in tracer.events if e.ph == "X"}
        assert closed == {"row 1", "row 2"}
        assert any(e.ph == "I" and e.name == "REF" for e in tracer.events)
        # The other rank's window is untouched until flush.
        tracer.flush()
        assert "row 3" in {e.name for e in tracer.events if e.ph == "X"}

    def test_close_captures_context_at_open_time(self):
        tracer = SpanTracer()
        rank = object()
        root = tracer.begin("query", "t", 0)
        tracer.bank_access(rank, 0, row=9, pre_ps=None, act_ps=10)
        tracer.end(100)
        tracer.flush()  # window closed after the query span already ended
        row = next(e for e in tracer.events if e.ph == "X")
        assert row.parent_id == root
        assert row.trace_id == tracer.events[0].trace_id

    def test_close_clamps_end_before_act(self):
        tracer = SpanTracer()
        rank = object()
        tracer.bank_access(rank, 0, row=1, pre_ps=None, act_ps=1000)
        tracer.bank_precharge(rank, 0, 500)
        (event,) = tracer.events
        assert event.dur_ps == 0


class TestFlush:
    def test_flush_ends_unbalanced_spans_and_is_idempotent(self):
        tracer = SpanTracer()
        tracer.begin("left-open", "t", 0)
        tracer.complete("work", "u", 10, 40)
        tracer.flush()
        tracer.flush()
        ends = [e for e in tracer.events if e.ph == "E"]
        assert len(ends) == 1
        assert ends[0].ts_ps == 50
        assert ends[0].args == {"flushed": True}
        assert tracer.depth == 0


class TestTraceState:
    def test_default_off_and_enable_disable_roundtrip(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        state = TraceState()
        assert not state.on and state.tracer is None
        tracer = state.enable()
        assert state.on and state.tracer is tracer
        assert state.disable() is tracer
        assert not state.on and state.tracer is None

    def test_env_var_enables_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        state = TraceState()
        assert state.on and state.tracer is not None
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not TraceState().on

    def test_tracing_context_installs_and_removes(self):
        assert not TRACE.on
        with tracing() as tracer:
            assert TRACE.on and TRACE.tracer is tracer
        assert not TRACE.on and TRACE.tracer is None

    def test_tracing_is_reentrant_joining_existing_tracer(self):
        with tracing() as outer:
            with tracing() as inner:
                assert inner is outer
            assert TRACE.on and TRACE.tracer is outer
        assert not TRACE.on

    def test_tracing_writes_trace_file_on_exit(self, tmp_path):
        import json

        out = tmp_path / "t.trace.json"
        with tracing(str(out)) as tracer:
            tracer.complete("x", "t", 0, 5)
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_default_cap_is_generous(self):
        assert SpanTracer().max_events == MAX_EVENTS
