"""Chrome-trace/Perfetto document schema and the terminal flame summary."""

import json

from repro.obs.export import (chrome_trace, events_from_doc, flame_summary,
                              flame_summary_doc, summarize_events,
                              write_chrome_trace)
from repro.obs.tracer import SpanTracer

VALID_PHASES = {"M", "B", "E", "X", "I", "C"}


def _sample_tracer() -> SpanTracer:
    tracer = SpanTracer()
    tracer.begin("query", "m0.query", 0, plan="Select")
    tracer.complete("rd", "m0.imc", 1_000_000, 500_000, hits=3)
    tracer.instant("REF", "m0.dram.ch0.dimm0.rank0", 1_500_000)
    tracer.complete("row 4", "m0.dram.ch0.dimm0.rank0.bank2", 0, 2_000_000)
    tracer.end(3_000_000)
    tracer.complete("host", "sweep", 0, 10)
    return tracer


class TestChromeTraceSchema:
    def test_document_shape_and_metadata(self):
        doc = chrome_trace(_sample_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata",
                            "metrics", "timeline"}
        assert doc["metadata"]["clock"] == "simulated_ps"
        assert doc["metadata"]["dropped_events"] == 0
        assert doc["metadata"]["max_ts_ps"] == 3_000_000
        assert doc["metadata"]["counter_tracks"] == {}  # no sampled windows
        json.dumps(doc)  # must be serialisable as-is

    def test_every_event_is_well_formed(self):
        doc = chrome_trace(_sample_tracer())
        for event in doc["traceEvents"]:
            assert event["ph"] in VALID_PHASES
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")
                assert "name" in event["args"]
            elif event["ph"] == "C":
                # Counter args are pure numeric series; timestamps rescale.
                assert all(isinstance(v, (int, float))
                           for v in event["args"].values())
            else:
                assert event["args"]["ts_ps"] == round(
                    event["ts"] * 1_000_000)
            if event["ph"] == "X":
                assert round(event["dur"] * 1_000_000) == event["args"]["dur_ps"]
            if event["ph"] == "I":
                assert event["s"] == "t"

    def test_tracks_map_to_named_processes_and_threads(self):
        doc = chrome_trace(_sample_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        processes = {e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"}
        assert processes == {"m0", "run"}  # machine prefix + root track
        assert {"query", "imc", "dram.ch0.dimm0.rank0.bank2",
                "sweep"} <= threads

    def test_causal_ids_preserved_in_args(self):
        doc = chrome_trace(_sample_tracer())
        payload = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert all("trace_id" in e["args"] and "span_id" in e["args"]
                   for e in payload)
        nested = next(e for e in payload if e["name"] == "rd")
        root = next(e for e in payload if e["name"] == "query")
        assert nested["args"]["parent_id"] == root["args"]["span_id"]

    def test_roundtrip_through_events_from_doc(self):
        tracer = _sample_tracer()
        doc = chrome_trace(tracer)
        events, dropped = events_from_doc(doc)
        assert dropped == 0
        assert len(events) == len(tracer.events)
        for original, restored in zip(tracer.events, events):
            assert restored.ph == original.ph
            assert restored.name == original.name
            assert restored.track == original.track
            assert restored.ts_ps == original.ts_ps
            assert restored.trace_id == original.trace_id

    def test_write_chrome_trace_is_loadable(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(_sample_tracer(), path)
        doc = json.loads(path.read_text())
        assert doc["metadata"]["clock"] == "simulated_ps"


class TestFlameSummary:
    def test_summary_aggregates_per_track(self):
        text = flame_summary(_sample_tracer())
        assert "m0.query" in text
        assert "query" in text and "rd" in text
        assert "█" in text

    def test_summary_of_doc_matches_summary_of_tracer(self):
        tracer = _sample_tracer()
        assert flame_summary_doc(chrome_trace(tracer)) == flame_summary(tracer)

    def test_empty_trace(self):
        assert summarize_events([]) == "(empty trace)"

    def test_dropped_note_appended(self):
        tracer = SpanTracer(max_events=1)
        tracer.complete("a", "t", 0, 1)
        tracer.complete("b", "t", 0, 1)
        assert "1 events dropped" in flame_summary(tracer)

    def test_complete_trace_still_reports_drop_count(self):
        # Truncation honesty: a complete trace says so explicitly instead
        # of silently omitting the dropped-events line.
        text = flame_summary(_sample_tracer())
        assert "0 events dropped" in text
        assert "no counter tracks" in text

    def test_counter_inventory_listed(self):
        tracer = _sample_tracer()
        tracer._tracks[id(self)] = "m0.dram.ch0.dimm0.rank0"
        tracer.timeline.bus(self, "cpu", 0, 500_000)
        text = flame_summary(tracer)
        assert "counter tracks:" in text
        assert "m0.bus_util_pct" in text
        assert flame_summary_doc(chrome_trace(tracer)) == text
