"""Tests for units, platform configuration, error hierarchy, and commands."""

import pytest

from repro import errors, units
from repro.config import (
    CPUCostModel,
    CacheLevelSpec,
    GEM5_PLATFORM,
    JafarCostModel,
    SystemConfig,
    XEON_PLATFORM,
)
from repro.dram import MemRequest
from repro.errors import ConfigError


class TestUnits:
    def test_time_conversions(self):
        assert units.ns(1) == 1000
        assert units.us(1.5) == 1_500_000
        assert units.ms(2) == 2_000_000_000
        assert units.seconds(1) == units.PS_PER_S

    def test_time_back_conversions(self):
        assert units.to_ns(1500) == 1.5
        assert units.to_us(units.us(3)) == 3.0
        assert units.to_ms(units.ms(0.5)) == 0.5

    def test_frequency(self):
        assert units.mhz(800) == 800_000_000
        assert units.ghz(2.5) == 2_500_000_000
        assert units.period_ps(units.ghz(1)) == 1000

    def test_period_validation(self):
        with pytest.raises(ConfigError):
            units.period_ps(0)
        with pytest.raises(ConfigError):
            units.period_ps(10**13)  # > 1 THz rounds to 0 ps

    def test_sizes(self):
        assert units.kib(2) == 2048
        assert units.mib(1) == 1 << 20
        assert units.gib(1) == 1 << 30

    def test_fmt_bytes(self):
        assert units.fmt_bytes(64) == "64 B"
        assert units.fmt_bytes(8192) == "8.0 KiB"
        assert units.fmt_bytes(3 << 20) == "3.0 MiB"
        assert units.fmt_bytes(2 << 30) == "2.0 GiB"

    def test_power_of_two_helpers(self):
        assert units.is_power_of_two(64)
        assert not units.is_power_of_two(0)
        assert not units.is_power_of_two(63)
        assert units.log2_exact(1024) == 10
        with pytest.raises(ConfigError):
            units.log2_exact(100)


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_subsystem_branches(self):
        assert issubclass(errors.DRAMTimingError, errors.DRAMError)
        assert issubclass(errors.PageFaultError, errors.MemoryError_)
        assert issubclass(errors.JafarBusyError, errors.JafarError)
        assert issubclass(errors.SchemaError, errors.ColumnStoreError)
        assert issubclass(errors.DDGError, errors.AccelError)

    def test_catching_the_base_class_works(self):
        with pytest.raises(errors.ReproError):
            raise errors.DRAMOwnershipError("x")


class TestConfig:
    def test_with_creates_modified_copy(self):
        faster = GEM5_PLATFORM.with_(cpu_freq_hz=3_000_000_000)
        assert faster.cpu_freq_hz == 3_000_000_000
        assert GEM5_PLATFORM.cpu_freq_hz == 1_000_000_000
        assert faster.caches == GEM5_PLATFORM.caches

    def test_validation(self):
        with pytest.raises(ConfigError):
            GEM5_PLATFORM.with_(cpu_freq_hz=0)
        with pytest.raises(ConfigError):
            GEM5_PLATFORM.with_(cores=0)
        with pytest.raises(ConfigError):
            GEM5_PLATFORM.with_(caches=())
        with pytest.raises(ConfigError):
            GEM5_PLATFORM.with_(populated_mib=-1)

    def test_cost_model_validation(self):
        with pytest.raises(ConfigError):
            CPUCostModel(ipc=0)
        with pytest.raises(ConfigError):
            CPUCostModel(base_uops=-1)
        with pytest.raises(ConfigError):
            CPUCostModel(mispredict_penalty_cycles=-1)
        with pytest.raises(ConfigError):
            JafarCostModel(output_buffer_bits=10)  # not a byte multiple
        with pytest.raises(ConfigError):
            JafarCostModel(invoke_overhead_ns=-1)
        with pytest.raises(ConfigError):
            JafarCostModel(words_per_cycle=0)

    def test_describe_covers_all_specs(self):
        rows = dict(GEM5_PLATFORM.describe())
        assert set(rows) == {"Platform", "CPU", "Cores", "Sockets", "Caches",
                             "DRAM"}
        assert "64 kB L1" in rows["Caches"]
        xeon = dict(XEON_PLATFORM.describe())
        assert "16 MB L3" in xeon["Caches"]

    def test_cache_level_spec_fields(self):
        spec = CacheLevelSpec("L1", 65536, 8, 4)
        assert (spec.name, spec.size_bytes, spec.ways,
                spec.hit_latency_cycles) == ("L1", 65536, 8, 4)

    def test_platforms_differ_where_the_paper_says(self):
        assert XEON_PLATFORM.cpu_freq_hz == 2 * GEM5_PLATFORM.cpu_freq_hz
        assert XEON_PLATFORM.sockets == 4
        assert GEM5_PLATFORM.sockets == 1
        assert XEON_PLATFORM.dram_grade != GEM5_PLATFORM.dram_grade


class TestMemRequestValidation:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            MemRequest(-1, 64, False, 0)
        with pytest.raises(ValueError):
            MemRequest(0, 0, False, 0)
        with pytest.raises(ValueError):
            MemRequest(0, 64, False, -5)

    def test_request_ids_are_unique(self):
        a = MemRequest(0, 64, False, 0)
        b = MemRequest(0, 64, False, 0)
        assert a.req_id != b.req_id
