"""Mutation smoke tests: every sanitizer catches its seeded violation.

Each test breaks one model invariant on purpose (a subclass or patched
method standing in for a future bad refactor) and asserts the matching
sanitizer aborts with :class:`SanitizerError` — alongside a healthy-path
control showing the same operations pass unsanitized models untouched.
"""

import heapq

import numpy as np
import pytest

from repro.analyze import simsan
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.setassoc import SetAssociativeCache
from repro.config import GEM5_PLATFORM
from repro.dram import Agent
from repro.dram.iobuffer import IOBuffer
from repro.dram.rank import Rank
from repro.dram.timing import speed_grade
from repro.errors import SanitizerError
from repro.jafar.alu import ComparatorPair
from repro.jafar.ownership import RankOwnership
from repro.sim.engine import Event, Simulator
from repro.system import Machine

TIMINGS = speed_grade("DDR3-1600K")


@pytest.fixture()
def sanitizers():
    """Install the sanitizers for one test, restoring the prior state."""
    with simsan.sanitized():
        yield


# -- engine --------------------------------------------------------------------


def test_engine_catches_time_regression(sanitizers):
    sim = Simulator()
    sim.schedule_at(100, lambda: None)
    sim.run()
    assert sim.now == 100
    # Smuggle a past-dated event straight into the heap, bypassing the
    # schedule_at guard (the counter is kept honest so only the regression
    # trips).
    heapq.heappush(sim._queue, Event(50, 0, 0, 999, lambda: None, _owner=sim))
    sim._pending += 1
    with pytest.raises(SanitizerError, match="regressed"):
        sim.step()


def test_engine_catches_pending_counter_drift(sanitizers):
    sim = Simulator()
    sim.schedule_at(10, lambda: None)
    sim._pending += 1  # seeded accounting bug
    with pytest.raises(SanitizerError, match="drifted"):
        sim.run()


def test_engine_catches_orphan_event(sanitizers):
    sim = Simulator()
    heapq.heappush(sim._queue, Event(50, 0, 0, 0, lambda: None))  # ownerless
    sim._pending += 1
    with pytest.raises(SanitizerError, match="orphan"):
        sim.run(until_ps=10)  # the orphan is still queued at audit time


def test_engine_healthy_run_is_silent(sanitizers):
    sim = Simulator()
    fired = []
    sim.schedule_at(10, lambda: fired.append(sim.now))
    event = sim.schedule_at(20, lambda: fired.append(sim.now))
    event.cancel()
    assert sim.run() == 1
    assert fired == [10]


# -- JEDEC ---------------------------------------------------------------------


class _NoActSpacingRank(Rank):
    """A broken refactor that drops rank-level tRRD/tFAW enforcement."""

    def _act_floor_ps(self) -> int:
        return 0


def test_jedec_catches_dropped_act_spacing(sanitizers):
    rank = _NoActSpacingRank(TIMINGS, banks=8, refresh_enabled=False)
    rank.access(0, 0, 0, is_write=False)
    with pytest.raises(SanitizerError, match="trrd"):
        rank.access(1, 0, 0, is_write=False)  # ACT on bank 1 with zero gap


def test_jedec_healthy_rank_is_silent(sanitizers):
    rank = Rank(TIMINGS, banks=8, refresh_enabled=False)
    first = rank.access(0, 0, 0, is_write=False)
    second = rank.access(1, 0, 0, is_write=False)
    # The real model defers the second ACT to honour tRRD.
    assert second.cas_ps > first.cas_ps - TIMINGS.cycles_to_ps(TIMINGS.cl)


def test_jedec_standalone_bank_is_out_of_scope(sanitizers):
    from repro.dram.bank import Bank

    bank = Bank(TIMINGS)
    bank.access(0, 0, is_write=False)  # no rank context: not fed, no error


# -- ownership handoff ---------------------------------------------------------


def test_ownership_catches_issue_before_handoff_completes(sanitizers):
    rank = Rank(TIMINGS, banks=8, refresh_enabled=False)
    ownership = RankOwnership(TIMINGS)
    grant = ownership.acquire(rank, 0, 1_000_000)
    assert grant.ready_ps > 0
    with pytest.raises(SanitizerError, match="handoff"):
        rank.access(0, 0, 0, is_write=False, agent=Agent.JAFAR)


def test_ownership_catches_early_mpr_disable(sanitizers):
    rank = Rank(TIMINGS, banks=8, refresh_enabled=False)
    ownership = RankOwnership(TIMINGS)
    grant = ownership.acquire(rank, 0, 1_000_000)
    rank.mode_registers.disable_mpr()  # host unblocked while granted
    with pytest.raises(SanitizerError, match="MPR"):
        ownership.release(grant, grant.ready_ps + 10)


def test_ownership_healthy_grant_cycle_is_silent(sanitizers):
    rank = Rank(TIMINGS, banks=8, refresh_enabled=False)
    ownership = RankOwnership(TIMINGS)
    grant = ownership.acquire(rank, 0, 1_000_000)
    rank.access(0, 0, grant.ready_ps, is_write=False, agent=Agent.JAFAR)
    ownership.release(grant, grant.expires_ps)


# -- IO buffer -----------------------------------------------------------------


def test_iobuffer_catches_lost_dual_pumping(sanitizers, monkeypatch):
    buf = IOBuffer(TIMINGS)
    buf.beat_schedule(1000)  # healthy control

    def single_pumped(self, data_start_ps, time_ps):
        if time_ps <= data_start_ps:
            return 0
        # Seeded bug: forgets that beats land on BOTH clock edges.
        words = (time_ps - data_start_ps) // self._tck_ps
        return min(words, self.words_per_burst)

    monkeypatch.setattr(IOBuffer, "words_available_by", single_pumped)
    with pytest.raises(SanitizerError, match="dual-pumped"):
        buf.beat_schedule(1000)


# -- cache ---------------------------------------------------------------------


def _hierarchy():
    l1 = SetAssociativeCache("L1", 1024, line_bytes=64, ways=2,
                             hit_latency_cycles=1)
    l2 = SetAssociativeCache("L2", 4096, line_bytes=64, ways=4,
                             hit_latency_cycles=4)
    return CacheHierarchy([l1, l2])


def test_cache_catches_dropped_fill(sanitizers):
    hierarchy = _hierarchy()
    hierarchy.access(0)  # healthy control
    lying_level = hierarchy.levels[1]
    real_access = SetAssociativeCache.access

    def lossy(self, addr, is_write=False):
        result = real_access(self, addr, is_write=is_write)
        index, tag = self._index_tag(addr)
        self._sets[index] = [w for w in self._sets[index] if w[0] != tag]
        return result

    lying_level.access = lossy.__get__(lying_level)  # only L2 lies
    with pytest.raises(SanitizerError, match="L2"):
        hierarchy.access(64 * 999)


def test_cache_catches_sticky_invalidate(sanitizers):
    hierarchy = _hierarchy()
    hierarchy.access(0)
    hierarchy.levels[0].invalidate = lambda addr: False  # drops nothing
    with pytest.raises(SanitizerError, match="still holds"):
        hierarchy.invalidate_range(0, 64)


def test_cache_healthy_traffic_is_silent(sanitizers):
    hierarchy = _hierarchy()
    for addr in range(0, 64 * 64, 64):
        hierarchy.access(addr, is_write=(addr % 128 == 0))
    assert hierarchy.invalidate_range(0, 1024) > 0


# -- fast-forward --------------------------------------------------------------


def test_fastforward_catches_bad_extrapolation(monkeypatch):
    from repro.sim import fastforward

    real = fastforward.apply_delta

    def skewed(base, delta, periods):
        # Seeded bug: the first snapshot slot (the driver clock) lands a
        # microsecond late, so the re-materialised state is inconsistent
        # with the rest of the extrapolation.
        out = real(base, delta, periods)
        if out is None:
            return None
        return (out[0] + 1_000_000,) + out[1:]

    monkeypatch.setattr(fastforward, "apply_delta", skewed)
    # Under ``pytest --simsan`` the sanitizers are already installed (and
    # fast-forward already forced off), so the install-time cross-check
    # would never re-run; cycle the global install around the check.
    was_active = simsan.active()
    if was_active:
        simsan.uninstall()
    try:
        with pytest.raises(SanitizerError, match="divergence"):
            with simsan.sanitized():
                pass  # the install-time cross-check must already abort
    finally:
        monkeypatch.undo()  # heal apply_delta before any reinstall
        if was_active:
            simsan.install()


def test_fastforward_forces_exact_mode_while_installed(sanitizers):
    from repro.sim.fastforward import FF

    assert not FF.on  # forced off for the other sanitizers' benefit


def test_fastforward_healthy_cross_check_is_silent():
    from repro.sim.fastforward import FF

    was_on = FF.on
    with simsan.sanitized():
        pass
    assert FF.on == was_on  # uninstall restored the fast paths


# -- scan equivalence ----------------------------------------------------------


N_ROWS = 512


def _run_select(machine):
    values = np.arange(N_ROWS, dtype=np.int64)  # row 100 sits on the bound
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(max(N_ROWS // 8, 1), dimm=0, pinned=True)
    return machine.driver.select_page(col.vaddr, N_ROWS, 100, 500, out.vaddr)


def test_scan_equivalence_catches_broken_comparator(sanitizers, monkeypatch):
    real = ComparatorPair.compare_block

    def off_by_one(self, words):
        # Seeded bug: the low-bound ALU compares strictly.
        mask = real(self, words)
        return mask & (words != self.low)

    monkeypatch.setattr(ComparatorPair, "compare_block", off_by_one)
    machine = Machine(GEM5_PLATFORM)
    with pytest.raises(SanitizerError, match="scan equivalence"):
        _run_select(machine)


def test_scan_equivalence_healthy_device_is_silent(sanitizers):
    machine = Machine(GEM5_PLATFORM)
    result = _run_select(machine)
    assert result.matches > 0
