"""The dynamic race sanitizer: shadowing, auditing, and zero-cost removal."""

import pytest

from repro.analyze import simsan
from repro.analyze.simsan.races import (
    CONFLICTS_OBSERVED, EVENTS_SHADOWED, METRICS, RaceSanitizer,
    drain_access_log)
from repro.dram.bank import Bank
from repro.dram.timing import speed_grade
from repro.errors import SanitizerError
from repro.sim.engine import Simulator

TIMINGS = speed_grade("DDR3-1600K")
TICK_PS = 400


@pytest.fixture()
def races():
    """A lone RaceSanitizer (cycling any global simsan install around it)."""
    was_active = simsan.active()
    if was_active:
        simsan.uninstall()
    sanitizer = RaceSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
        drain_access_log()
        if was_active:
            simsan.install()


def _same_tick_writes(priority_a=0, priority_b=0, attr_b="open_row"):
    """Two events at one tick poking Bank state; returns the armed sim."""
    sim = Simulator()
    bank = Bank(TIMINGS)
    sim.schedule_at(TICK_PS, lambda: setattr(bank, "open_row", 5),
                    priority=priority_a)
    sim.schedule_at(TICK_PS, lambda: setattr(bank, attr_b, 9),
                    priority=priority_b)
    return sim


class TestConflictDetection:
    def test_seeded_same_tick_writes_are_flagged(self, races):
        sim = _same_tick_writes()
        with pytest.raises(SanitizerError, match="event-ordering race"):
            sim.run()

    def test_error_names_the_contested_attribute(self, races):
        sim = _same_tick_writes()
        with pytest.raises(SanitizerError, match=r"Bank\.open_row"):
            sim.run()

    def test_conflict_counter_increments(self, races):
        before = CONFLICTS_OBSERVED.value
        sim = _same_tick_writes()
        with pytest.raises(SanitizerError):
            sim.run()
        assert CONFLICTS_OBSERVED.value == before + 1

    def test_write_read_conflict_is_flagged(self, races):
        sim = Simulator()
        bank = Bank(TIMINGS)
        seen = []
        sim.schedule_at(TICK_PS, lambda: setattr(bank, "open_row", 5))
        sim.schedule_at(TICK_PS, lambda: seen.append(bank.open_row))
        with pytest.raises(SanitizerError, match="conflicting accesses"):
            sim.run()


class TestNonConflicts:
    def test_priority_edge_silences_the_pair(self, races):
        sim = _same_tick_writes(priority_a=0, priority_b=1)
        sim.run()

    def test_disjoint_attributes_are_silent(self, races):
        sim = _same_tick_writes(attr_b="row_hits")
        sim.run()

    def test_read_read_is_silent(self, races):
        sim = Simulator()
        bank = Bank(TIMINGS)
        seen = []
        sim.schedule_at(TICK_PS, lambda: seen.append(bank.row_hits))
        sim.schedule_at(TICK_PS, lambda: seen.append(bank.row_hits))
        sim.run()
        assert seen == [0, 0]

    def test_different_timestamps_are_silent(self, races):
        sim = Simulator()
        bank = Bank(TIMINGS)
        sim.schedule_at(TICK_PS, lambda: setattr(bank, "open_row", 5))
        sim.schedule_at(2 * TICK_PS, lambda: setattr(bank, "open_row", 9))
        sim.run()
        assert bank.open_row == 9

    def test_causally_ordered_events_are_silent(self, races):
        # The first event *schedules* the second at the same tick: the
        # engine guarantees parent-before-child, so the tie-break cannot
        # flip them and the write pair is not a race.
        sim = Simulator()
        bank = Bank(TIMINGS)

        def parent():
            bank.open_row = 5
            sim.schedule_at(TICK_PS, child)

        def child():
            bank.open_row = 9

        sim.schedule_at(TICK_PS, parent)
        sim.run()
        assert bank.open_row == 9


class TestShadowing:
    def test_events_shadowed_counter_and_access_log(self, races):
        before = EVENTS_SHADOWED.value
        sim = Simulator()
        bank = Bank(TIMINGS)
        sim.schedule_at(TICK_PS, lambda: setattr(bank, "open_row", 5))
        sim.schedule_at(2 * TICK_PS, lambda: setattr(bank, "row_hits", 1))
        sim.run()
        assert EVENTS_SHADOWED.value == before + 2
        log = drain_access_log()
        assert len(log) == 2
        accesses = [a for record in log for a in record["accesses"]]
        assert {"component": "Bank", "attr": "open_row", "mode": "W"} in accesses

    def test_metrics_registry_snapshot_has_the_detector_counters(self, races):
        snapshot = METRICS.snapshot()
        assert "races.events_shadowed" in snapshot
        assert "races.conflicts_observed" in snapshot
        assert "races.permutations_applied" in snapshot

    def test_non_event_accesses_are_not_recorded(self, races):
        bank = Bank(TIMINGS)
        bank.open_row = 42  # direct-timestamp code path: no event running
        assert drain_access_log() == []


class TestZeroOverheadWhenOff:
    def test_uninstall_restores_unhooked_classes(self):
        was_active = simsan.active()
        if was_active:
            simsan.uninstall()
        try:
            sanitizer = RaceSanitizer()
            sanitizer.install()
            assert "__getattribute__" in Bank.__dict__
            sanitizer.uninstall()
            assert "__getattribute__" not in Bank.__dict__
            assert "__setattr__" not in Bank.__dict__
            assert not hasattr(Simulator.schedule_at, "__simsan_original__")
        finally:
            if was_active:
                simsan.install()

    def test_no_shadowing_means_no_counting(self):
        if simsan.active():
            pytest.skip("global sanitizers shadow every event")
        before = EVENTS_SHADOWED.value
        sim = Simulator()
        bank = Bank(TIMINGS)
        sim.schedule_at(TICK_PS, lambda: setattr(bank, "open_row", 5))
        sim.run()
        assert EVENTS_SHADOWED.value == before
        assert drain_access_log() == []

    def test_install_uninstall_cycle_leaves_results_bit_identical(self):
        from repro.analysis.speedup import measure_point

        def payload():
            point = measure_point(0.5, 512)
            return (point.cpu_ps, point.jafar_ps, point.matches)

        was_active = simsan.active()
        if was_active:
            simsan.uninstall()
        try:
            baseline = payload()
            sanitizer = RaceSanitizer()
            sanitizer.install()
            sanitizer.uninstall()
            assert payload() == baseline
        finally:
            if was_active:
                simsan.install()
