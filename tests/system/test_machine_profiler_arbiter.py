"""Tests for full-system assembly, the Fig. 4 profiler, and the arbiter."""

import numpy as np
import pytest

from repro.config import GEM5_PLATFORM, XEON_PLATFORM, platform
from repro.dram import MemRequest
from repro.errors import ConfigError, SimulationError
from repro.system import (
    Machine,
    gap_budget,
    idle_gap_slowdown,
    profile_controller,
)


class TestMachine:
    def test_gem5_platform_builds(self):
        machine = Machine(GEM5_PLATFORM)
        assert machine.timings.name == "DDR3-2133N"
        assert len(machine.hierarchy.levels) == 2
        assert len(machine.devices) == 1  # one DIMM, one JAFAR

    def test_xeon_platform_builds(self):
        machine = Machine(XEON_PLATFORM)
        assert len(machine.hierarchy.levels) == 3
        assert len(machine.devices) == 4  # 2 channels x 2 DIMMs
        assert machine.geometry.total_bytes == 256 * 1024 * 1024

    def test_platform_lookup(self):
        assert platform("gem5") is GEM5_PLATFORM
        with pytest.raises(ConfigError):
            platform("power9")

    def test_alloc_read_round_trip(self):
        machine = Machine(GEM5_PLATFORM)
        values = np.arange(10_000, dtype=np.int64)
        mapping = machine.alloc_array(values)
        back = machine.read_array(mapping, values.nbytes)
        assert (back == values).all()

    def test_alloc_pinned(self):
        machine = Machine(GEM5_PLATFORM)
        mapping = machine.alloc_array(np.arange(16, dtype=np.int64), pinned=True)
        assert machine.vm.is_pinned(mapping.vaddr)

    def test_alloc_zeros(self):
        machine = Machine(GEM5_PLATFORM)
        mapping = machine.alloc_zeros(4096)
        assert not machine.read_array(mapping, 4096, dtype=np.uint8).any()

    def test_populated_size_must_divide(self):
        with pytest.raises(ConfigError, match="populated"):
            Machine(GEM5_PLATFORM.with_(populated_mib=100))  # not a power split

    def test_describe_matches_table1(self):
        rows = dict(XEON_PLATFORM.describe())
        assert "Xeon" in rows["Platform"]
        assert rows["CPU"].startswith("2 GHz")
        assert "4 socket" in rows["Sockets"]
        assert "1024 GB" in rows["DRAM"]


class TestProfiler:
    def make_loaded_machine(self):
        machine = Machine(GEM5_PLATFORM)
        t = machine.timings
        # Requests spaced 100 bus cycles apart, 64 of them.
        for k in range(64):
            machine.controller.submit(
                MemRequest(k * 64, 64, k % 4 == 3, t.cycles_to_ps(100 * k)))
        return machine, t.cycles_to_ps(100 * 64)

    def test_profile_reports_the_papers_estimate(self):
        machine, window_ps = self.make_loaded_machine()
        profile = profile_controller(machine.controller, window_ps, "unit")
        assert profile.reads == 48
        assert profile.writes == 16
        assert profile.mc_empty_cycles == pytest.approx(
            profile.total_cycles - profile.rc_busy_cycles
            - profile.wc_busy_cycles)
        assert profile.mean_idle_period_cycles == pytest.approx(
            profile.mc_empty_cycles / 64)

    def test_estimate_is_pessimistic_vs_ground_truth(self):
        """The paper's bound under-counts idle time (assumes no R/W
        overlap), so the true mean gap is at least the estimate's order."""
        machine, window_ps = self.make_loaded_machine()
        profile = profile_controller(machine.controller, window_ps, "unit")
        assert profile.true_mean_idle_gap_cycles > 0
        # With no R/W overlap the two agree to within the N vs N-1 gap
        # count; with overlap the estimate can only go lower.
        assert profile.mean_idle_period_cycles <= (
            profile.true_mean_idle_gap_cycles * 1.02)

    def test_window_validation(self):
        machine, _ = self.make_loaded_machine()
        with pytest.raises(SimulationError):
            profile_controller(machine.controller, 0)


class TestArbiter:
    def test_gap_budget_reproduces_section33_arithmetic(self):
        """500-cycle gap -> 125 blocks -> 4 KB -> half an 8 KB row."""
        machine = Machine(XEON_PLATFORM)
        budget = gap_budget(500.0, machine.timings, row_bytes=8192)
        assert budget.blocks_per_gap == pytest.approx(125.0)
        assert budget.bytes_per_gap == pytest.approx(4000.0)
        assert budget.fraction_of_row == pytest.approx(0.49, abs=0.01)

    def test_reentry_overhead_shrinks_budget(self):
        machine = Machine(XEON_PLATFORM)
        free = gap_budget(500.0, machine.timings)
        taxed = gap_budget(500.0, machine.timings, reentry_overhead_cycles=100)
        assert taxed.usable_cycles == 400
        assert taxed.bytes_per_gap < free.bytes_per_gap

    def test_idle_gap_slowdown_exceeds_one(self):
        machine, window_ps = TestProfiler().make_loaded_machine()
        profile = profile_controller(machine.controller, window_ps, "unit")
        est = idle_gap_slowdown(work_ps=10**9, profile=profile,
                                timings=machine.timings,
                                bytes_total=32 * 1024 * 1024)
        assert est.slowdown > 1.0
        assert est.interruptions > 0

    def test_validation(self):
        machine, window_ps = TestProfiler().make_loaded_machine()
        profile = profile_controller(machine.controller, window_ps, "unit")
        with pytest.raises(ConfigError):
            idle_gap_slowdown(0, profile, machine.timings, 100)
        with pytest.raises(ConfigError):
            gap_budget(-1.0, machine.timings)
