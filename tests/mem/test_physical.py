"""Tests for the physical-memory backing store."""

import numpy as np
import pytest

from repro.errors import MemoryError_, OutOfMemoryError
from repro.mem import PhysicalMemory


def test_read_write_round_trip():
    mem = PhysicalMemory(1024)
    mem.write(100, b"hello")
    assert mem.read(100, 5).tobytes() == b"hello"


def test_memory_starts_zeroed():
    mem = PhysicalMemory(64)
    assert not mem.read(0, 64).any()


def test_word_view_aliases_storage():
    mem = PhysicalMemory(1024)
    view = mem.view_words(0, 4, dtype=np.int64)
    view[:] = [1, -2, 3, -4]
    again = mem.view_words(0, 4, dtype=np.int64)
    assert list(again) == [1, -2, 3, -4]


def test_write_words_and_read_back():
    mem = PhysicalMemory(1024)
    mem.write_words(64, np.array([10, 20, 30], dtype=np.int32))
    assert list(mem.view_words(64, 3, dtype=np.int32)) == [10, 20, 30]


def test_unaligned_word_view_raises():
    mem = PhysicalMemory(1024)
    with pytest.raises(MemoryError_, match="aligned"):
        mem.view_words(3, 1, dtype=np.int64)


def test_out_of_bounds_access_raises():
    mem = PhysicalMemory(64)
    with pytest.raises(MemoryError_):
        mem.read(60, 8)
    with pytest.raises(MemoryError_):
        mem.write(64, b"x")
    with pytest.raises(MemoryError_):
        mem.read(-1, 4)


def test_fill():
    mem = PhysicalMemory(64)
    mem.fill(8, 8, 0xFF)
    assert mem.read(8, 8).tolist() == [0xFF] * 8
    assert mem.read(0, 8).tolist() == [0] * 8
    with pytest.raises(MemoryError_):
        mem.fill(0, 4, 300)


def test_zero_size_memory_rejected():
    with pytest.raises(OutOfMemoryError):
        PhysicalMemory(0)


def test_read_returns_copy():
    mem = PhysicalMemory(64)
    snapshot = mem.read(0, 8)
    mem.write(0, b"\x01" * 8)
    assert not snapshot.any()
