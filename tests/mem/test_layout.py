"""Tests for multi-DIMM interleaving layout helpers (§2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem import (
    interleaved_word_ownership,
    merge_partial_bitmasks,
    shuffle_for_contiguity,
)


def test_ownership_at_word_granularity():
    """Interleaving at 64-bit granularity: words alternate units."""
    mask = interleaved_word_ownership(8, word_bytes=8, interleave_bytes=8,
                                      num_units=2, unit=0)
    assert mask.tolist() == [True, False] * 4


def test_ownership_at_line_granularity():
    mask = interleaved_word_ownership(16, word_bytes=8, interleave_bytes=64,
                                      num_units=2, unit=1)
    assert mask.tolist() == [False] * 8 + [True] * 8  # 8 words per 64B chunk


def test_ownership_partition_is_complete():
    masks = [
        interleaved_word_ownership(100, 8, 64, 4, unit)
        for unit in range(4)
    ]
    assert np.logical_or.reduce(masks).all()
    assert sum(m.sum() for m in masks) == 100


def test_ownership_validation():
    with pytest.raises(ConfigError):
        interleaved_word_ownership(8, 8, 4, 2, 0)  # interleave < word
    with pytest.raises(ConfigError):
        interleaved_word_ownership(8, 8, 64, 2, 5)  # unit out of range
    with pytest.raises(ConfigError):
        interleaved_word_ownership(-1, 8, 64, 2, 0)


def test_merge_partial_bitmasks_recovers_full_result():
    """Each JAFAR overwrites only bits for rows it operated on (§2.2)."""
    values = np.arange(32, dtype=np.int64)
    full = values % 3 == 0
    ownership = [interleaved_word_ownership(32, 8, 64, 2, u) for u in range(2)]
    partials = []
    for owns in ownership:
        partial = np.zeros(32, dtype=bool)
        partial[owns] = full[owns]
        partials.append(partial)
    merged = merge_partial_bitmasks(partials, ownership)
    assert (merged == full).all()


def test_merge_rejects_overlap_and_gaps():
    ones = np.ones(4, dtype=bool)
    with pytest.raises(ConfigError, match="overlap"):
        merge_partial_bitmasks([ones, ones], [ones, ones])
    half = np.array([True, True, False, False])
    with pytest.raises(ConfigError, match="cover"):
        merge_partial_bitmasks([ones], [half])
    with pytest.raises(ConfigError, match="no partial"):
        merge_partial_bitmasks([], [])


def test_shuffle_for_contiguity_round_trip():
    values = np.arange(24, dtype=np.int64) * 7
    shuffled, inverse = shuffle_for_contiguity(values, interleave_bytes=64,
                                               num_units=2)
    assert (shuffled[inverse] == values).all()
    # First half of the shuffled array is unit 0's words.
    owns0 = interleaved_word_ownership(24, 8, 64, 2, 0)
    assert (shuffled[:owns0.sum()] == values[owns0]).all()


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    units=st.sampled_from([1, 2, 4]),
    interleave=st.sampled_from([8, 64, 4096]),
)
def test_shuffle_round_trip_property(n, units, interleave):
    values = np.arange(n, dtype=np.int64)
    shuffled, inverse = shuffle_for_contiguity(values, interleave, units)
    assert (shuffled[inverse] == values).all()
    assert sorted(shuffled.tolist()) == values.tolist()
