"""Tests for frame allocation, placement, virtual memory, and pinning."""

import pytest

from repro.dram import DRAMGeometry
from repro.errors import OutOfMemoryError, PageFaultError, PinningError
from repro.mem import FrameAllocator, Placement, VirtualMemory

PAGE = 4096
GEO = DRAMGeometry(channels=1, dimms_per_channel=4, ranks_per_dimm=1,
                   banks_per_rank=8, row_bytes=8192, rows_per_bank=64)


def make_allocator(populated=16 * PAGE) -> FrameAllocator:
    return FrameAllocator(GEO, PAGE, populated)


class TestAllocator:
    def test_fill_first_packs_one_dimm(self):
        alloc = make_allocator()
        frames = alloc.alloc(4, placement=Placement.FILL_FIRST)
        assert frames == [0, PAGE, 2 * PAGE, 3 * PAGE]
        assert all(alloc.dimm_of(f) == 0 for f in frames)

    def test_round_robin_rotates_dimms(self):
        alloc = make_allocator()
        frames = alloc.alloc(4, placement=Placement.ROUND_ROBIN)
        assert [alloc.dimm_of(f) for f in frames] == [0, 1, 2, 3]

    def test_forced_dimm_placement(self):
        alloc = make_allocator()
        frames = alloc.alloc(3, dimm=2)
        assert all(alloc.dimm_of(f) == 2 for f in frames)

    def test_exhaustion_raises(self):
        alloc = make_allocator(populated=2 * PAGE)
        alloc.alloc(2, dimm=0)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(1, dimm=0)
        # Other DIMMs still have frames.
        assert alloc.alloc(1, dimm=1)

    def test_total_exhaustion(self):
        alloc = make_allocator(populated=PAGE)
        alloc.alloc(4)  # one page per DIMM
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(1)

    def test_free_and_reuse(self):
        alloc = make_allocator(populated=PAGE)
        frames = alloc.alloc(1, dimm=0)
        alloc.free(frames)
        assert alloc.alloc(1, dimm=0) == frames

    def test_double_free_raises(self):
        alloc = make_allocator()
        frames = alloc.alloc(1)
        alloc.free(frames)
        with pytest.raises(PinningError, match="double free"):
            alloc.free(frames)

    def test_unaligned_free_raises(self):
        alloc = make_allocator()
        with pytest.raises(PinningError):
            alloc.free([123])

    def test_fill_first_spills_to_next_dimm(self):
        alloc = make_allocator(populated=2 * PAGE)
        frames = alloc.alloc(3, placement=Placement.FILL_FIRST)
        assert [alloc.dimm_of(f) for f in frames] == [0, 0, 1]

    def test_interleaved_geometry_rejected(self):
        geo = DRAMGeometry(channels=2, dimms_per_channel=1, ranks_per_dimm=1,
                           banks_per_rank=8, row_bytes=8192, rows_per_bank=64,
                           interleave_bytes=64)
        with pytest.raises(PinningError, match="fill-first"):
            FrameAllocator(geo, PAGE, 4 * PAGE)


class TestVirtualMemory:
    def make_vm(self) -> VirtualMemory:
        return VirtualMemory(make_allocator())

    def test_mmap_translate_round_trip(self):
        vm = self.make_vm()
        mapping = vm.mmap(3 * PAGE)
        for offset in (0, 5, PAGE, 3 * PAGE - 1):
            paddr = vm.translate(mapping.vaddr + offset)
            assert 0 <= paddr < GEO.total_bytes

    def test_contiguous_virtual_maps_contiguous_physical_fill_first(self):
        vm = self.make_vm()
        mapping = vm.mmap(4 * PAGE)
        runs = vm.translate_range(mapping.vaddr, 4 * PAGE)
        assert runs == [(0, 4 * PAGE)]

    def test_translate_range_splits_on_discontiguity(self):
        vm = self.make_vm()
        mapping = vm.mmap(2 * PAGE, placement=Placement.ROUND_ROBIN)
        runs = vm.translate_range(mapping.vaddr, 2 * PAGE)
        assert len(runs) == 2
        assert all(size == PAGE for _, size in runs)

    def test_unmapped_translation_faults(self):
        vm = self.make_vm()
        with pytest.raises(PageFaultError):
            vm.translate(0xDEAD_BEEF_000)

    def test_mlock_munlock_cycle(self):
        vm = self.make_vm()
        mapping = vm.mmap(2 * PAGE)
        vm.mlock(mapping.vaddr, 2 * PAGE)
        assert vm.is_pinned(mapping.vaddr)
        assert vm.is_pinned(mapping.vaddr + PAGE)
        vm.munlock(mapping.vaddr, 2 * PAGE)
        assert not vm.is_pinned(mapping.vaddr)

    def test_munlock_of_unpinned_raises(self):
        vm = self.make_vm()
        mapping = vm.mmap(PAGE)
        with pytest.raises(PinningError):
            vm.munlock(mapping.vaddr, PAGE)

    def test_munmap_of_pinned_page_raises(self):
        vm = self.make_vm()
        mapping = vm.mmap(PAGE)
        vm.mlock(mapping.vaddr, PAGE)
        with pytest.raises(PinningError, match="munlock first"):
            vm.munmap(mapping)

    def test_munmap_returns_frames(self):
        alloc = make_allocator(populated=PAGE)
        vm = VirtualMemory(alloc)
        mapping = vm.mmap(4 * PAGE)  # uses every frame
        vm.munmap(mapping)
        assert alloc.free_frames() == 4
        with pytest.raises(PageFaultError):
            vm.translate(mapping.vaddr)

    def test_dimm_of_respects_forced_placement(self):
        vm = self.make_vm()
        mapping = vm.mmap(PAGE, dimm=3)
        assert vm.dimm_of(mapping.vaddr) == 3

    def test_mapping_pages_helper(self):
        vm = self.make_vm()
        mapping = vm.mmap(PAGE + 1)
        assert mapping.num_pages == 2
        assert mapping.pages() == [mapping.vaddr, mapping.vaddr + PAGE]

    def test_invalid_sizes_raise(self):
        vm = self.make_vm()
        with pytest.raises(PageFaultError):
            vm.mmap(0)
        mapping = vm.mmap(PAGE)
        with pytest.raises(PageFaultError):
            vm.translate_range(mapping.vaddr, 0)
        with pytest.raises(PinningError):
            vm.mlock(mapping.vaddr, 0)
