"""Determinism pass family: exact finding locations on the fixtures."""

from repro.analyze import run_analysis


def _findings(fixture_tree, name, rule=None):
    path = next(fixture_tree.rglob(name))
    report = run_analysis([str(path)], with_project_passes=False)
    found = report.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def test_wall_clock_exact_locations(fixture_tree):
    found = _findings(fixture_tree, "bad_wallclock.py", "wall-clock")
    assert [(f.line, f.col) for f in found] == [(2, 0), (7, 9), (8, 9)]
    # Nothing else fires on this fixture.
    assert _findings(fixture_tree, "bad_wallclock.py") == found


def test_unseeded_random_exact_locations(fixture_tree):
    found = _findings(fixture_tree, "bad_random.py", "unseeded-random")
    assert [f.line for f in found] == [2, 7, 8, 9]
    assert "default_rng() without a seed" in found[1].message


def test_float_ps_exact_locations(fixture_tree):
    found = _findings(fixture_tree, "bad_float_ps.py", "float-ps")
    assert [f.line for f in found] == [5, 6, 7]
    assert "edge_ps" in found[0].message
    assert "true division" in found[0].message
    assert "float literal 0.5" in found[1].message
    assert "wait_cycles" in found[2].message


def test_set_iteration_exact_locations(fixture_tree):
    found = _findings(fixture_tree, "bad_set_iteration.py", "set-iteration")
    assert [f.line for f in found] == [5, 7]


def test_good_fixture_is_clean(fixture_tree):
    assert _findings(fixture_tree, "good_clean.py") == []


def test_scope_limits_passes_to_simulation_dirs(tmp_path):
    # The same wall-clock violation outside sim/dram/jafar is not flagged.
    other = tmp_path / "workloads"
    other.mkdir()
    (other / "mod.py").write_text("import time\nnow = time.time()\n")
    report = run_analysis([str(tmp_path)], with_project_passes=False)
    assert report.findings == []
