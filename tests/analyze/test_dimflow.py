"""Dimension-dataflow pass: propagation beyond what a name lint can see."""

import textwrap

from repro.analyze import run_analysis
from repro.analyze.dimflow import DimFlowPass


def _run(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    report = run_analysis([str(tmp_path)], passes=[DimFlowPass()],
                          with_project_passes=False)
    return report.findings


def _rules(findings):
    return [f.rule for f in findings]


def test_mix_laundered_through_unsuffixed_local(tmp_path):
    found = _run(tmp_path, """\
        def f(delay_ps, count_cycles):
            stash = delay_ps
            return stash + count_cycles
    """)
    assert _rules(found) == ["dim-mix"]
    assert "[ps]" in found[0].message and "[cycles]" in found[0].message


def test_mix_through_helper_return_value(tmp_path):
    found = _run(tmp_path, """\
        def budget(raw):
            return ns(raw)

        def f(count_cycles):
            total = budget(3)
            return total + count_cycles
    """)
    assert _rules(found) == ["dim-mix"]


def test_mix_through_units_constructor(tmp_path):
    found = _run(tmp_path, """\
        def f(count_cycles):
            return ns(10) < count_cycles
    """)
    assert _rules(found) == ["dim-mix"]


def test_mix_through_instance_field(tmp_path):
    found = _run(tmp_path, """\
        class Clock:
            def __init__(self):
                self.budget = us(1)

            def over(self, size_bytes):
                return self.budget + size_bytes
    """)
    assert _rules(found) == ["dim-mix"]
    assert "[ps]" in found[0].message and "[bytes]" in found[0].message


def test_reassign_changes_dimension(tmp_path):
    found = _run(tmp_path, """\
        def f(delay_ps, size_bytes):
            cursor = delay_ps
            cursor = size_bytes
            return cursor
    """)
    assert _rules(found) == ["dim-reassign"]


def test_suffix_contract_violated_by_binding(tmp_path):
    found = _run(tmp_path, """\
        def f():
            total_ps = kib(4)
            return total_ps
    """)
    assert _rules(found) == ["dim-reassign"]
    assert "total_ps" in found[0].message


def test_multiplicative_conversions_are_exempt(tmp_path):
    found = _run(tmp_path, """\
        def f(delay_ps, tck_ps, count_cycles):
            scaled = delay_ps // 1000
            widened = count_cycles * 8
            ratio = delay_ps / tck_ps
            return scaled + widened + ratio
    """)
    assert found == []


def test_branch_disagreement_degrades_to_unknown(tmp_path):
    found = _run(tmp_path, """\
        def f(flag, delay_ps, size_bytes, count_cycles):
            x = delay_ps if flag else size_bytes
            return x + count_cycles
    """)
    assert found == []


def test_dimension_survives_round_abs_max_and_indexing(tmp_path):
    found = _run(tmp_path, """\
        def f(starts, delay_ps, count_cycles):
            latest_ps = max(round(delay_ps), abs(starts[0]))
            return latest_ps + count_cycles
    """, name="g.py")
    # starts[0] is unknown, so max() joins to ps via delay_ps.
    assert _rules(found) == ["dim-mix"]


def test_allow_comment_suppresses_corpus_findings(tmp_path):
    found = _run(tmp_path, """\
        def f(delay_ps, count_cycles):
            return delay_ps + count_cycles  # analyze: allow[dim-mix]
    """)
    assert found == []


def test_conflicting_return_dims_block_name_resolution(tmp_path):
    found = _run(tmp_path, """\
        def span(a_ps):
            return a_ps

        class Other:
            def span(self, n_bytes):
                return n_bytes

        def f(count_cycles, x):
            return span(x) + count_cycles
    """)
    assert found == []


def test_full_tree_is_dimflow_clean():
    report = run_analysis(["src"], passes=[DimFlowPass()],
                          with_project_passes=False)
    assert report.findings == []
