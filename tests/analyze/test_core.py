"""Framework behaviour: discovery, suppression, CLI exit codes, clean repo."""

import json

import pytest

from repro.analyze import all_passes, discover, run_analysis
from repro.analyze.cli import main

from .conftest import REPO_SRC


class TestDiscovery:
    def test_discovers_py_files_and_skips_caches(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.txt").write_text("not python\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.pyc").write_text("junk")
        (cache / "c.py").write_text("x = 1\n")
        found = discover([str(tmp_path)])
        assert found == [str(tmp_path / "a.py")]

    def test_single_file_path(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("x = 1\n")
        assert discover([str(f)]) == [str(f)]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            discover(["/no/such/dir/anywhere"])


class TestSuppression:
    def test_allow_comment_silences_named_rule(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "def f(a, p):\n"
            "    edge_ps = a / p  # analyze: allow[float-ps] audited\n"
        )
        report = run_analysis([str(tmp_path)], with_project_passes=False)
        assert report.findings == []

    def test_allow_comment_is_rule_specific(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "def f(a, p):\n"
            "    edge_ps = a / p  # analyze: allow[wall-clock]\n"
        )
        report = run_analysis([str(tmp_path)], with_project_passes=False)
        assert [f.rule for f in report.findings] == ["float-ps"]

    def test_ignore_spelling_silences_named_rule(self, tmp_path):
        # ``ignore`` is the canonical spelling (``allow`` stays as an alias).
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "def f(a, p):\n"
            "    edge_ps = a / p  # analyze: ignore[float-ps] audited\n"
        )
        report = run_analysis([str(tmp_path)], with_project_passes=False)
        assert report.findings == []

    def test_ignore_spelling_is_rule_specific(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "def f(a, p):\n"
            "    edge_ps = a / p  # analyze: ignore[wall-clock]\n"
        )
        report = run_analysis([str(tmp_path)], with_project_passes=False)
        assert [f.rule for f in report.findings] == ["float-ps"]

    def test_bare_allow_silences_everything(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "import time  # analyze: allow\n"
            "def f(a, p):\n"
            "    return time.time()\n"
        )
        report = run_analysis([str(tmp_path)], with_project_passes=False)
        assert [f.rule for f in report.findings] == ["wall-clock"]
        assert report.findings[0].line == 3


class TestCleanRepo:
    def test_repo_source_yields_zero_findings(self):
        report = run_analysis([str(REPO_SRC)])
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings)
        assert report.ok
        assert report.files_scanned > 90

    def test_all_ten_passes_registered(self):
        names = {p.name for p in all_passes()}
        assert names == {"wall-clock", "unseeded-random", "float-ps",
                         "set-iteration", "dimflow", "magic-latency",
                         "jedec", "ddr3-literal", "direct-instrument",
                         "race-static"}


class TestCLI:
    def test_exit_zero_on_clean_tree(self, capsys):
        assert main([str(REPO_SRC)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_exit_one_on_each_bad_fixture(self, fixture_tree, capsys):
        bad = sorted(fixture_tree.rglob("bad_*.py"))
        assert len(bad) >= 6
        for path in bad:
            assert main([str(path), "--no-project-passes"]) == 1, path.name

    def test_exit_zero_on_good_fixtures(self, fixture_tree):
        for path in sorted(fixture_tree.rglob("good_*.py")):
            assert main([str(path), "--no-project-passes"]) == 0, path.name

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["/no/such/path"]) == 2

    def test_json_format_shape(self, fixture_tree, capsys):
        rc = main([str(fixture_tree / "sim" / "bad_float_ps.py"),
                   "--format", "json", "--no-project-passes"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"float-ps"}
        first = payload["findings"][0]
        assert set(first) == {"rule", "message", "path", "line", "col"}

    def test_list_passes(self, capsys):
        assert main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "jedec" in out and "float-ps" in out

    def test_parse_error_is_reported_and_exits_two(self, tmp_path, capsys):
        # A file the gate could not parse means the gate did not fully run:
        # that is an internal error (2), not a findings verdict (1).
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path), "--no-project-passes"]) == 2
        assert "parse-error" in capsys.readouterr().out

    def test_parse_error_outranks_findings(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "mod.py").write_text(
            "def f(delay_ps, size_bytes):\n"
            "    return delay_ps + size_bytes\n"
        )
        assert main([str(tmp_path), "--no-project-passes"]) == 2
        out = capsys.readouterr().out
        assert "parse-error" in out and "dim-mix" in out

    def test_json_schema_is_stable_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("def f(x_ps):\n    return x_ps\n")
        rc = main([str(tmp_path), "--format", "json", "--no-project-passes"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        # The top-level shape is a contract for CI tooling: same keys on a
        # clean run as on a dirty one, findings just empty.
        assert set(payload) == {"ok", "files_scanned", "passes",
                                "findings", "parse_errors",
                                "pass_timings_ms"}
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["parse_errors"] == []
        assert "dimflow" in payload["passes"]
        assert "race-static" in payload["passes"]
        # Every pass reports a timing; values are host wall time (>= 0).
        assert set(payload["pass_timings_ms"]) == set(payload["passes"])
        assert all(ms >= 0 for ms in payload["pass_timings_ms"].values())

    def test_findings_sorted_for_reproducible_diffs(self, tmp_path, capsys):
        # Two rules fire on the same file: output order must be
        # (path, line, rule, col), not discovery or registration order.
        (tmp_path / "mod.py").write_text(
            "def f(delay_ps, size_bytes):\n"
            "    return delay_ps + size_bytes\n"
            "def g(gap_ps, n_rows):\n"
            "    return gap_ps + n_rows\n"
        )
        rc = main([str(tmp_path), "--format", "json", "--no-project-passes"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        keys = [(f["path"], f["line"], f["rule"], f["col"])
                for f in payload["findings"]]
        assert keys == sorted(keys)

    def test_timings_flag_prints_per_pass_wall_time(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--no-project-passes", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "dimflow" in out and "ms" in out

    def test_dimflow_findings_reach_the_cli(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "def f(delay_ps, size_bytes):\n"
            "    return delay_ps + size_bytes\n"
        )
        rc = main([str(tmp_path), "--format", "json", "--no-project-passes"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"dim-mix"}

    def test_missing_path_emits_no_json_payload(self, capsys):
        assert main(["/no/such/path", "--format", "json"]) == 2
        captured = capsys.readouterr()
        # Errors go to stderr only; stdout stays empty so a consumer piping
        # stdout into a JSON parser sees the failure, not a bogus document.
        assert captured.out == ""
        assert "error:" in captured.err

    def test_list_passes_includes_dimflow(self, capsys):
        assert main(["--list-passes"]) == 0
        assert "dimflow" in capsys.readouterr().out
