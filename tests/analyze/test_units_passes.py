"""Unit-safety pass family: exact finding locations on the fixtures."""

from repro.analyze import run_analysis
from repro.analyze.units_lint import MagicLatencyPass


def _findings(root, name, rule):
    path = next(root.rglob(name))
    report = run_analysis([str(path)], with_project_passes=False)
    return [f for f in report.findings if f.rule == rule]


def test_unit_mix_exact_locations(fixture_tree):
    found = _findings(fixture_tree, "bad_unit_mix.py", "dim-mix")
    assert [f.line for f in found] == [5, 6]
    assert "[ps]" in found[0].message and "[cycles]" in found[0].message
    assert "[bytes]" in found[1].message


def test_magic_latency_exact_locations(fixture_tree):
    found = _findings(fixture_tree, "bad_magic.py", "magic-latency")
    assert [f.line for f in found] == [5, 6]
    assert "150000" in found[0].message
    assert "refresh_cycles" in found[1].message


def test_magic_latency_exempts_constant_homes_and_tests(tmp_path):
    exempt = MagicLatencyPass()
    assert not exempt.applies_to("src/repro/config.py")
    assert not exempt.applies_to("src/repro/dram/timing.py")
    assert not exempt.applies_to("src/repro/units.py")
    assert not exempt.applies_to("tests/analyze/fixtures/dram/bad_magic.py")
    assert not exempt.applies_to("benchmarks/bench_fig3.py")
    assert exempt.applies_to("src/repro/jafar/device.py")


def test_small_literals_are_not_magic(tmp_path):
    (tmp_path / "mod.py").write_text("delay_ps = 0\nwarmup_cycles = 16\n")
    report = run_analysis([str(tmp_path)], with_project_passes=False)
    assert report.findings == []


def test_good_units_fixture_is_clean(fixture_tree):
    path = next(fixture_tree.rglob("good_units.py"))
    report = run_analysis([str(path)], with_project_passes=False)
    assert report.findings == []
