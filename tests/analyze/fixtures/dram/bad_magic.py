"""Known-bad fixture for the magic-latency pass."""


def model():
    stall_ps = 150_000                     # line 5: magic latency constant
    refresh_cycles = 5200                  # line 6: magic cycle count
    return stall_ps + refresh_cycles
