"""Known-good fixture: unit-disciplined code."""


def total(delay_ps, delay_cycles, timings, config):
    converted_ps = timings.cycles_to_ps(delay_cycles)
    combined_ps = delay_ps + converted_ps
    stall_ps = config.stall_ps
    return combined_ps + stall_ps
