"""Known-bad fixture for the unit-mix pass."""


def total(delay_ps, delay_cycles, size_bytes):
    combined = delay_ps + delay_cycles     # line 5: ps + cycles
    if delay_ps > size_bytes:              # line 6: ps vs bytes comparison
        combined -= size_bytes
    return combined
