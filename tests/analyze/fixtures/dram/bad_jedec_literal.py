"""Known-bad fixture for the ddr3-literal pass."""
from repro.dram.timing import DDR3Timings

BROKEN = DDR3Timings("DDR3-broken", tck_ps=1250, cl=11, trcd=11, trp=11,
                     tras=12, trrd=6, tfaw=10, cwl=13)
