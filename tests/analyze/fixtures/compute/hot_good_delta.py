"""Guarded twin of hot_bad_delta: the magnitude check dominates the narrow."""

import numpy as np

_INT64_SAFE = 1 << 62


class GuardedDeltaBackend:
    def apply_delta(self, base, delta, reps):
        bound = int(max(abs(int(d)) for d in delta)) * reps
        if bound >= _INT64_SAFE:
            return [int(b) + int(d) * reps for b, d in zip(base, delta)]
        scaled = np.asarray(delta, dtype=np.int64) * np.int64(reps)
        return np.asarray(base, dtype=np.int64) + scaled
