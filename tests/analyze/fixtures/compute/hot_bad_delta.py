"""Mutation fixture: apply_delta copy with the int64 magnitude guard removed.

Mirrors the numpy backend's fast-forward delta kernel, minus the
``_INT64_SAFE`` check that routes huge extrapolations to the reference
implementation.  The bounds pass cannot prove ``delta * reps`` fits int64.
"""

import numpy as np


class LeakyDeltaBackend:
    def apply_delta(self, base, delta, reps):
        scaled = np.asarray(delta, dtype=np.int64) * np.int64(reps)
        return np.asarray(base, dtype=np.int64) + scaled
