"""Seeded ordering bug: two same-tick writes to the row-buffer field.

``close_row`` and ``load_row`` are scheduled at the same timestamp with the
default (equal) priority, and both write ``open_row`` — whichever fires
last wins, so the simulated state depends on heap tie-break order.  The
``race-static`` pass must flag the pair.
"""


class RowBufferModel:
    def __init__(self):
        self.open_row = -1
        self.row_hits = 0

    def close_row(self):
        self.open_row = -1

    def load_row(self):
        self.open_row = 7

    def arm(self, sim, when_ps):
        sim.schedule_at(when_ps, self.close_row)
        sim.schedule_at(when_ps, self.load_row)
