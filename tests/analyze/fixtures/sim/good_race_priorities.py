"""The same-tick row-buffer writers, correctly ordered by priority.

Identical effect sets to ``bad_race_same_tick``, but the two schedule
sites declare distinct priorities — an explicit ordering edge the engine's
``(time_ps, priority, tiebreak, seq)`` key can never invert — so the
``race-static`` pass must stay silent.
"""


class RowBufferModel:
    def __init__(self):
        self.open_row = -1
        self.row_hits = 0

    def close_row(self):
        self.open_row = -1

    def load_row(self):
        self.open_row = 7

    def arm(self, sim, when_ps):
        sim.schedule_at(when_ps, self.close_row, priority=0)
        sim.schedule_at(when_ps, self.load_row, priority=1)
