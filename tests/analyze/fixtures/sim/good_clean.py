"""Known-good fixture: determinism-safe simulation-style code."""
import numpy as np


def schedule(period_ps, pumped, pending):
    edge_ps = period_ps // pumped          # floor division stays integer
    half_ps = (period_ps + 1) // 2
    rng = np.random.default_rng(42)        # explicitly seeded
    for event in sorted(set(pending)):     # sorted() restores determinism
        event()
    return edge_ps, half_ps, rng
