"""Fixed twin of hot_bad_bypass: the filter routed through the backend."""


class Engine:
    def __init__(self, backend):
        self.backend = backend

    def run(self, values, lo, hi):
        mask = self.backend.range_mask(values, lo, hi)
        return self.backend.popcount(mask)
