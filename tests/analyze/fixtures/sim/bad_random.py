"""Known-bad fixture for the unseeded-random pass."""
import random                        # line 2: stdlib random import
import numpy as np


def draw():
    rng = np.random.default_rng()    # line 7: seedless generator
    vals = np.random.shuffle([1])    # line 8: global-state RNG
    return rng, vals, random.random()
