"""Guarded twin of hot_bad_trace: tracing behind the single-flag check."""

from repro.obs.tracing import _TRACE


class Engine:
    def __init__(self, queue):
        self.queue = queue

    def run(self):
        for ev in self.queue:
            if _TRACE.on:
                _TRACE.tracer.emit("event", ev)
