"""Mutation fixture: tracer use in a hot run loop without the flag guard.

Named ``hot_*`` (not ``bad_*``) because only the ``hotpath`` suite flags
it — the default-gate fixture tests iterate ``bad_*``/``good_*`` and expect
their verdicts from the registered passes alone.
"""

from repro.obs.tracing import _TRACE


class Engine:
    def __init__(self, queue):
        self.queue = queue

    def run(self):
        for ev in self.queue:
            tracer = _TRACE.tracer
            tracer.emit("event", ev)
