"""Mutation fixture: an element-wise row loop that bypasses repro.compute.

The filter belongs in a ComputeBackend kernel (range_mask); looping over
the values in the event loop is exactly the bypass the hotpath suite exists
to catch.
"""


class Engine:
    def run(self, values, lo, hi):
        hits = []
        for v in values:
            if lo <= v <= hi:
                hits.append(v)
        return hits
