"""Known-bad fixture for the float-ps pass."""


def schedule(period_ps, pumped):
    edge_ps = period_ps / pumped     # line 5: true division into *_ps
    half_ps = period_ps * 0.5        # line 6: float literal into *_ps
    wait_cycles = 3.5                # line 7: float literal into *_cycles
    return edge_ps, half_ps, wait_cycles
