"""Known-bad fixture for the set-iteration pass."""


def drain(pending):
    for event in set(pending):       # line 5: iterating a set() call
        event()
    return [e for e in {1, 2, 3}]    # line 7: comprehension over set display
