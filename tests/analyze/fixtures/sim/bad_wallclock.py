"""Known-bad fixture for the wall-clock pass.  Never imported, only parsed."""
import time                          # line 2: wall-clock import
from datetime import datetime


def stamp():
    t0 = time.time()                 # line 7: wall-clock call
    t1 = datetime.now()              # line 8: wall-clock call
    return t0, t1
