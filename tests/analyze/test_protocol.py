"""Protocol invariants: JEDEC static checks and trace replay.

The replay tests drive the Figure 3 workload shape — a JAFAR select over a
column plus a CPU read stream — record the DRAM command stream, and assert
the validator accepts it; then hand-corrupt the stream and assert each
corruption is caught.
"""

import dataclasses

import numpy as np
import pytest

from repro.analyze import jedec_findings, replay_commands, replay_trace
from repro.analyze.cli import main
from repro.config import GEM5_PLATFORM, PLATFORMS
from repro.dram import Agent, MemRequest
from repro.dram.timing import DDR3_2133, SPEED_GRADES, DDR3Timings
from repro.sim import CommandTrace, attach_trace, dump_commands, load_commands
from repro.system import Machine


def _fig3_trace(rows=16384):
    """Run a scaled-down Figure 3 workload with command tracing attached."""
    machine = Machine(GEM5_PLATFORM)
    trace = attach_trace(machine)
    values = np.arange(rows, dtype=np.int64)
    col = machine.alloc_array(values, dimm=0, pinned=True)
    out = machine.alloc_zeros(max(rows // 8, 64), dimm=0, pinned=True)
    machine.driver.select_column(col.vaddr, rows, 0, rows // 2, out.vaddr)
    for i in range(64):  # the interfering CPU agent of §3.3
        machine.controller.submit(
            MemRequest(i * 64, 64, False, machine.core.now_ps, Agent.CPU))
    return machine, trace


class TestJEDECStatic:
    def test_all_registered_grades_are_consistent(self):
        for grade in SPEED_GRADES.values():
            assert jedec_findings(grade, "<test>") == []

    def test_all_platforms_resolve_and_validate(self):
        for platform in PLATFORMS.values():
            assert jedec_findings(platform.dram_timings(), "<test>") == []

    def test_tras_too_short_is_flagged(self):
        bad = DDR3Timings("X", tck_ps=1250, cl=11, trcd=11, trp=11, tras=15)
        rules = [f.message for f in jedec_findings(bad, "<test>")]
        assert any("tRAS" in m and "tRCD + CL" in m for m in rules)

    def test_write_latency_above_read_latency_is_flagged(self):
        bad = DDR3Timings("X", tck_ps=1250, cl=11, trcd=11, trp=11, tras=28,
                          cwl=13)
        assert any("CWL" in f.message for f in jedec_findings(bad, "<test>"))

    def test_refresh_starvation_is_flagged(self):
        bad = DDR3Timings("X", tck_ps=1250, cl=11, trcd=11, trp=11, tras=28,
                          trfc_ps=200_000, trefi_ps=100_000)
        assert any("tREFI" in f.message for f in jedec_findings(bad, "<test>"))

    def test_tfaw_smaller_than_four_trrd_rejected_at_construction(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            DDR3Timings("X", tck_ps=1250, cl=11, trcd=11, trp=11, tras=28,
                        trrd=6, tfaw=10)

    def test_literal_pass_flags_fixture(self, fixture_tree):
        rc = main([str(next(fixture_tree.rglob("bad_jedec_literal.py"))),
                   "--no-project-passes"])
        assert rc == 1


class TestReplayOnRealTraces:
    def test_fig3_command_stream_is_protocol_clean(self):
        machine, trace = _fig3_trace()
        assert len(trace.commands) > 1000
        kinds = {c.kind for c in trace.commands}
        assert {"ACT", "RD", "WR"} <= kinds
        assert replay_trace(trace, machine.timings) == []

    def test_both_agents_present_in_command_stream(self):
        _machine, trace = _fig3_trace()
        agents = {c.agent for c in trace.commands if c.kind in ("RD", "WR")}
        assert {"cpu", "jafar"} <= agents

    def test_dump_load_roundtrip_and_cli(self, tmp_path, capsys):
        machine, trace = _fig3_trace(rows=4096)
        path = tmp_path / "trace.jsonl"
        n = dump_commands(trace, str(path))
        assert n == len(trace.commands)
        assert load_commands(str(path)) == trace.commands
        assert main(["--replay", str(path), "--grade",
                     machine.timings.name]) == 0

    def test_cli_replay_fails_on_corrupted_stream(self, tmp_path, capsys):
        machine, trace = _fig3_trace(rows=4096)
        acts = [i for i, c in enumerate(trace.commands) if c.kind == "ACT"]
        victim = acts[len(acts) // 2]
        corrupted = list(trace.commands)
        corrupted[victim] = dataclasses.replace(
            corrupted[victim], time_ps=corrupted[victim].time_ps - 10_000_000)
        bad_trace = CommandTrace()
        bad_trace.commands = corrupted
        path = tmp_path / "bad.jsonl"
        dump_commands(bad_trace, str(path))
        assert main(["--replay", str(path), "--grade",
                     machine.timings.name]) == 1


class TestReplayCorruptions:
    """Each hand-corruption trips the specific rule guarding it."""

    @pytest.fixture()
    def stream(self):
        _machine, trace = _fig3_trace(rows=8192)
        violations = replay_trace(trace, DDR3_2133)
        assert violations == []
        return list(trace.commands)

    @staticmethod
    def _shift(stream, index, delta_ps):
        out = list(stream)
        out[index] = dataclasses.replace(
            out[index], time_ps=out[index].time_ps + delta_ps)
        return out

    def test_act_moved_before_pre_completion_trips_trp(self, stream):
        # Find an ACT directly preceded by a PRE on the same bank.
        for i, cmd in enumerate(stream):
            if (cmd.kind == "ACT" and i > 0 and stream[i - 1].kind == "PRE"
                    and stream[i - 1].bank == cmd.bank):
                corrupted = self._shift(stream, i, -DDR3_2133.cycles_to_ps(
                    DDR3_2133.trp))
                rules = {v.rule for v in replay_commands(corrupted, DDR3_2133)}
                assert "trp" in rules
                return
        pytest.fail("no PRE->ACT pair found in trace")

    def test_duplicated_act_trips_act_while_open(self, stream):
        i = next(i for i, c in enumerate(stream) if c.kind == "ACT")
        corrupted = list(stream)
        corrupted.insert(i + 1, dataclasses.replace(
            stream[i], time_ps=stream[i].time_ps + 100_000_000))
        rules = {v.rule for v in replay_commands(corrupted, DDR3_2133)}
        assert "act-while-open" in rules

    def test_compressed_activates_trip_tfaw(self, stream):
        # Synthetic stream: 5 ACTs to distinct banks, tRRD-spaced but
        # inside one tFAW window.
        t = DDR3_2133
        trrd_ps = t.cycles_to_ps(t.trrd)
        proto = next(c for c in stream if c.kind == "ACT")
        acts = [dataclasses.replace(proto, bank=b, time_ps=b * trrd_ps)
                for b in range(5)]
        rules = {v.rule for v in replay_commands(acts, t)}
        assert "tfaw" in rules
        assert "trrd" not in rules

    def test_early_cas_trips_trcd(self, stream):
        for i, cmd in enumerate(stream):
            if (cmd.kind in ("RD", "WR") and i > 0
                    and stream[i - 1].kind == "ACT"
                    and stream[i - 1].bank == cmd.bank):
                corrupted = self._shift(stream, i, -DDR3_2133.cycles_to_ps(
                    DDR3_2133.trcd))
                rules = {v.rule for v in replay_commands(corrupted, DDR3_2133)}
                assert "trcd" in rules or "tccd" in rules
                return
        pytest.fail("no ACT->CAS pair found in trace")

    def test_cas_to_wrong_row_trips_closed_row(self, stream):
        i = next(i for i, c in enumerate(stream) if c.kind == "RD")
        corrupted = list(stream)
        corrupted[i] = dataclasses.replace(corrupted[i],
                                           row=corrupted[i].row + 1)
        rules = {v.rule for v in replay_commands(corrupted, DDR3_2133)}
        assert "cas-closed-row" in rules


class TestRankEnforcement:
    """The model itself honours what the validator checks (no ACT races)."""

    def test_rank_spaces_activates_by_trrd_and_tfaw(self):
        from repro.dram.rank import Rank

        t = DDR3_2133
        rank = Rank(t, banks=8)
        trace = CommandTrace()
        rank.trace = trace
        # Eight row-miss accesses to eight different banks, all requested
        # at time 0: without rank-level enforcement all eight would ACT at
        # once (a tFAW violation / current-draw race).
        for b in range(8):
            rank.access(b, row=0, at_ps=0, is_write=False)
        acts = sorted(c.time_ps for c in trace.commands if c.kind == "ACT")
        assert len(acts) == 8
        trrd_ps = t.cycles_to_ps(t.trrd)
        tfaw_ps = t.cycles_to_ps(t.tfaw)
        for a, b in zip(acts, acts[1:]):
            assert b - a >= trrd_ps
        for first, fifth in zip(acts, acts[4:]):
            assert fifth - first >= tfaw_ps
        assert replay_trace(trace, t) == []
