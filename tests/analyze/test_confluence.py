"""The schedule-confluence harness (``python -m repro.analyze races``)."""

import json

import pytest

from repro.analyze.confluence import (
    MODES, check_confluence, fig3_payload, main, run_confluence,
    storm_payload)
from repro.dram.bank import Bank
from repro.dram.timing import speed_grade
from repro.sim.engine import Simulator
from repro.sim.perturb import PERTURB, perturbed

SEEDS = [1, 2, 3, 4, 5]
SMOKE_ROWS = 512


class TestCheckConfluence:
    def test_order_invariant_payload_is_confluent(self):
        def run():
            payload, _ = storm_payload()
            return payload

        result = check_confluence(run, SEEDS, "storm")
        assert result["confluent"]
        assert result["divergent_seeds"] == []

    def test_seeded_order_dependent_bug_is_caught(self):
        # The seeded mutation: a fold whose value depends on same-tick
        # firing order (string concatenation is not commutative).  The
        # harness must report the divergent seeds.
        def buggy_run():
            sim = Simulator()
            trace = []
            for k in range(8):
                sim.schedule_at(100, lambda k=k: trace.append(k))
            sim.run()
            return {"trace": "".join(str(k) for k in trace)}

        result = check_confluence(buggy_run, SEEDS, "buggy")
        assert not result["confluent"]
        assert result["divergent_seeds"] != []

    def test_divergence_replays_under_the_reported_seed(self):
        def buggy_run():
            sim = Simulator()
            trace = []
            for k in range(8):
                sim.schedule_at(100, lambda k=k: trace.append(k))
            sim.run()
            return {"trace": tuple(trace)}

        result = check_confluence(buggy_run, SEEDS, "buggy")
        seed = result["divergent_seeds"][0]
        with perturbed(seed):
            first = buggy_run()
        with perturbed(seed):
            second = buggy_run()
        assert first == second  # deterministic per seed: replayable


class TestGoldenPoints:
    @pytest.mark.parametrize("mode", MODES)
    def test_fig3_points_bit_identical_across_seeds(self, mode):
        from repro.sim import fastforward as _ffm

        def one_mode():
            results = []
            for selectivity in (0.0, 0.5, 1.0):
                results.append(check_confluence(
                    lambda s=selectivity: fig3_payload(SMOKE_ROWS, s),
                    SEEDS, f"s{selectivity}"))
            return results

        if mode == "exact":
            with _ffm.exact_mode():
                results = one_mode()
        else:
            results = one_mode()
        assert all(r["confluent"] for r in results), results


class TestStorm:
    def test_storm_is_confluent_but_orders_permute(self):
        report = run_confluence(SEEDS, rows=SMOKE_ROWS, modes=())
        storm = report["storm"]
        assert storm["confluent"]
        assert storm["orders_permuted"], (
            "the permuter never changed a firing order: the harness is "
            "vacuous")
        assert storm["race"] is None
        assert storm["events"] > 0
        assert report["permutations_applied"] > 0

    def test_storm_access_log_records_bank_probes(self):
        report = run_confluence(SEEDS[:2], rows=SMOKE_ROWS, modes=())
        accesses = [a for record in report["storm"]["access_log"]
                    for a in record["accesses"]]
        assert any(a["component"] == "Bank" for a in accesses)

    def test_storm_detects_seeded_same_tick_write_bug(self):
        # The dynamic sanitizer is installed around the storm, so a storm
        # variant with two same-priority writes to one Bank field must be
        # reported as a race (not just a divergence).
        from repro.analyze import confluence

        timings = speed_grade("DDR3-1600K")

        def buggy_storm():
            sim = Simulator()
            bank = Bank(timings)
            sim.schedule_at(100, lambda: setattr(bank, "open_row", 5))
            sim.schedule_at(100, lambda: setattr(bank, "open_row", 9))
            sim.run()
            return {"open_row": bank.open_row}, ()

        real = confluence.storm_payload
        confluence.storm_payload = buggy_storm
        try:
            storm = confluence._run_storm(SEEDS, shadow=True)
        finally:
            confluence.storm_payload = real
        assert not storm["ok"]
        assert storm["race"] is not None
        assert "Bank.open_row" in storm["race"]


class TestCLI:
    def test_clean_run_exits_zero(self, capsys):
        rc = main(["--seeds", "2", "--rows", str(SMOKE_ROWS),
                   "--mode", "fast-forward"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "confluent" in out
        assert "NOT confluent" not in out

    def test_json_format_and_report_file(self, tmp_path, capsys):
        out_path = tmp_path / "races.json"
        rc = main(["--seeds", "2", "--rows", str(SMOKE_ROWS),
                   "--mode", "exact", "--format", "json",
                   "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert set(payload["modes"]) == {"exact"}
        # stdout carries the summary; the file keeps the full access log.
        assert "access_log" not in payload["storm"]
        on_disk = json.loads(out_path.read_text())
        assert on_disk["ok"] is True
        assert isinstance(on_disk["storm"]["access_log"], list)

    def test_bad_seed_count_is_usage_error(self, capsys):
        assert main(["--seeds", "0"]) == 2

    def test_dispatch_through_analyze_cli(self, capsys):
        from repro.analyze.cli import main as analyze_main

        rc = analyze_main(["races", "--seeds", "1",
                           "--rows", str(SMOKE_ROWS),
                           "--mode", "fast-forward"])
        assert rc == 0
        assert "repro.analyze races" in capsys.readouterr().out

    def test_harness_leaves_perturbation_off(self):
        main(["--seeds", "1", "--rows", str(SMOKE_ROWS),
              "--mode", "fast-forward"])
        assert PERTURB.seed is None
