"""Shared fixtures for the repro.analyze tests.

Fixture source files live under ``tests/analyze/fixtures/{sim,dram,compute}/``.
They are copied into a temp tree before scanning because two passes
deliberately exempt paths containing ``tests``/``fixtures`` segments
(magic-latency treats test scaffolding as out of scope); the copy gives the
files a product-code-shaped path while keeping one canonical source.
"""

import shutil
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture()
def fixture_tree(tmp_path):
    """Copy the fixture files to ``tmp_path/proj`` and return that root."""
    root = tmp_path / "proj"
    shutil.copytree(FIXTURES, root)
    return root
