"""The ``hotpath`` suite: hot-set closure, mutation fixtures, baseline."""

import json
import textwrap

from repro.analyze import run_analysis
from repro.analyze.core import Finding
from repro.analyze.hotpath import (
    BASELINE_SCHEMA,
    Interval,
    TOP,
    apply_baseline,
    hotpath_passes,
    main,
    write_baseline,
)


def _scan(*paths):
    return run_analysis([str(p) for p in paths], passes=hotpath_passes())


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestMutationFixtures:
    """Each seeded bug trips exactly its rule; the fixed twin is clean."""

    def test_unguarded_trace_mutation(self, fixture_tree):
        report = _scan(fixture_tree / "sim" / "hot_bad_trace.py")
        assert {f.rule for f in report.findings} == {"unguarded-trace"}
        # Both the _TRACE.tracer read and the tracer.emit() call fire.
        assert len(report.findings) == 2

    def test_guarded_trace_twin_is_clean(self, fixture_tree):
        report = _scan(fixture_tree / "sim" / "hot_good_trace.py")
        assert report.findings == []

    def test_backend_bypass_mutation(self, fixture_tree):
        report = _scan(fixture_tree / "sim" / "hot_bad_bypass.py")
        assert [f.rule for f in report.findings] == ["backend-bypass"]
        assert "values" in report.findings[0].message

    def test_backend_routed_twin_is_clean(self, fixture_tree):
        report = _scan(fixture_tree / "sim" / "hot_good_bypass.py")
        assert report.findings == []

    def test_removed_int64_guard_mutation(self, fixture_tree):
        report = _scan(fixture_tree / "compute" / "hot_bad_delta.py")
        assert {f.rule for f in report.findings} == {"int-overflow"}

    def test_guarded_delta_twin_is_clean(self, fixture_tree):
        report = _scan(fixture_tree / "compute" / "hot_good_delta.py")
        assert report.findings == []


class TestHotSet:
    def test_run_outside_sim_is_not_a_root(self, tmp_path):
        _write(tmp_path, "bench/runner.py", """
            class Harness:
                def run(self, values, lo, hi):
                    hits = []
                    for v in values:
                        if lo <= v <= hi:
                            hits.append(v)
                    return hits
        """)
        assert _scan(tmp_path).findings == []

    def test_callee_of_hot_root_inherits_hotness(self, tmp_path):
        _write(tmp_path, "sim/engine.py", """
            class Sim:
                def run(self):
                    return self._drain()

                def _drain(self):
                    total = 0
                    for v in self.values:
                        total = total + v
                    return total
        """)
        report = _scan(tmp_path)
        assert [f.rule for f in report.findings] == ["backend-bypass"]
        assert "_drain" in report.findings[0].message

    def test_backend_methods_are_roots(self, tmp_path):
        _write(tmp_path, "kernels.py", """
            class ToyBackend(ComputeBackend):
                def filter(self, row_values, hi):
                    out = []
                    for v in row_values:
                        if v < hi:
                            out.append(v)
                    return out
        """)
        report = _scan(tmp_path)
        assert [f.rule for f in report.findings] == ["backend-bypass"]


class TestSuppression:
    """Hotpath rules honour the shared core suppression comment."""

    def test_ignore_comment_suppresses_the_named_rule(self, tmp_path):
        _write(tmp_path, "sim/engine.py", """
            class Sim:
                def run(self, values, hi):
                    n = 0
                    for v in values:  # analyze: ignore[backend-bypass]
                        if v < hi:
                            n = n + 1
                    return n
        """)
        assert _scan(tmp_path).findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        _write(tmp_path, "sim/engine.py", """
            class Sim:
                def run(self, values, hi):
                    n = 0
                    for v in values:  # analyze: ignore[hot-alloc]
                        if v < hi:
                            n = n + 1
                    return n
        """)
        report = _scan(tmp_path)
        assert [f.rule for f in report.findings] == ["backend-bypass"]


class TestInterval:
    def test_bounded_product_is_within_int64(self):
        got = Interval(0, 1 << 20) * Interval(0, 1 << 20)
        assert got.within(1 << 62)

    def test_top_is_not_within_anything(self):
        assert not TOP.within(1 << 62)

    def test_join_widens_both_ends(self):
        assert Interval(-4, 2).join(Interval(0, 9)) == Interval(-4, 9)


class TestBaseline:
    def _finding(self, path="src/m.py", rule="hot-alloc", line=3):
        return Finding(rule, "msg", path, line, 0)

    def test_grandfathers_up_to_count(self):
        findings = [self._finding(line=3), self._finding(line=9)]
        result = apply_baseline(
            findings, [{"path": "src/m.py", "rule": "hot-alloc", "count": 1}])
        assert result.grandfathered == 1
        assert [f.line for f in result.new_findings] == [9]
        assert result.stale == []

    def test_underused_entry_is_stale(self):
        result = apply_baseline(
            [self._finding()],
            [{"path": "src/m.py", "rule": "hot-alloc", "count": 2}])
        assert result.new_findings == []
        assert result.stale == [{"path": "src/m.py", "rule": "hot-alloc",
                                 "count": 2, "actual": 1}]

    def test_write_then_apply_roundtrip(self, tmp_path, fixture_tree):
        bad = fixture_tree / "sim" / "hot_bad_bypass.py"
        baseline = tmp_path / "bl.json"
        assert main([str(bad), "--write-baseline", str(baseline)]) == 0
        data = json.loads(baseline.read_text())
        assert data["schema"] == BASELINE_SCHEMA
        assert data["entries"][0]["rule"] == "backend-bypass"
        # With the fresh baseline the same tree is clean (exit 0) ...
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        # ... and once the debt is fixed the stale entry blocks (exit 1).
        good = fixture_tree / "sim" / "hot_good_bypass.py"
        assert main([str(good), "--baseline", str(baseline)]) == 1

    def test_corrupt_baseline_exits_two(self, tmp_path, fixture_tree):
        baseline = tmp_path / "bl.json"
        baseline.write_text("{\"schema\": \"something-else\"}")
        good = fixture_tree / "sim" / "hot_good_bypass.py"
        assert main([str(good), "--baseline", str(baseline)]) == 2


class TestCLI:
    def test_parse_error_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "sim/broken.py", "def f(:\n")
        assert main([str(tmp_path), "--no-baseline"]) == 2
        assert "parse-error" in capsys.readouterr().out

    def test_json_payload_carries_baseline_and_timings(
            self, fixture_tree, capsys):
        bad = fixture_tree / "sim" / "hot_bad_bypass.py"
        rc = main([str(bad), "--no-baseline", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"ok", "files_scanned", "passes", "findings",
                                "parse_errors", "pass_timings_ms", "baseline"}
        assert payload["ok"] is False
        assert set(payload["baseline"]) == {"applied", "grandfathered",
                                            "stale"}
        assert set(payload["pass_timings_ms"]) == {"hot-purity", "hot-bounds"}

    def test_out_file_matches_stdout_payload(self, tmp_path, fixture_tree,
                                             capsys):
        bad = fixture_tree / "sim" / "hot_bad_bypass.py"
        out = tmp_path / "report.json"
        rc = main([str(bad), "--no-baseline", "--format", "json",
                   "--out", str(out)])
        assert rc == 1
        assert json.loads(out.read_text()) == json.loads(
            capsys.readouterr().out)

    def test_findings_sorted_for_reproducible_diffs(self, tmp_path, capsys):
        _write(tmp_path, "sim/engine.py", """
            class Sim:
                def run(self, values, hi):
                    n = 0
                    for v in values:
                        if v < hi:
                            n = n + 1
                    for v in values:
                        if v > hi:
                            n = n + 1
                    return n
        """)
        rc = main([str(tmp_path), "--no-baseline", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        keys = [(f["path"], f["line"], f["rule"], f["col"])
                for f in payload["findings"]]
        assert len(keys) == 2
        assert keys == sorted(keys)

    def test_repo_src_is_clean_modulo_shipped_baseline(self, capsys):
        # The shipped baseline lives at the repo root; run from there the
        # gate must pass — this is exactly what CI executes.
        assert main(["src", "--baseline", "hotpath_baseline.json"]) == 0
        assert "clean" in capsys.readouterr().out
