"""The ``race-static`` pass: effect inference and conflict pairing."""

import ast
import textwrap

from repro.analyze import run_analysis
from repro.analyze.core import ModuleSource
from repro.analyze.races import Effect, build_effect_table


def _scan(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    report = run_analysis([str(tmp_path)], with_project_passes=False)
    return [f for f in report.findings if f.rule == "race-static"]


def _table(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_effect_table([ModuleSource("mod.py", tree, source)])


class TestEffectInference:
    def test_self_attribute_effects_carry_the_owner_class(self):
        table = _table("""
            class Bank:
                def close(self):
                    self.open_row = -1
                def peek(self):
                    return self.open_row
        """)
        assert Effect("Bank", "open_row") in table["close"].writes
        assert Effect("Bank", "open_row") in table["peek"].reads

    def test_annotated_parameter_receivers_are_owned(self):
        table = _table("""
            def drain(buf: IOBuffer):
                buf.words = 0
        """)
        assert Effect("IOBuffer", "words") in table["drain"].writes

    def test_unannotated_receivers_are_wildcards(self):
        table = _table("""
            def drain(buf):
                buf.words = 0
        """)
        assert Effect("*", "words") in table["drain"].writes
        assert Effect("*", "words").conflicts_with(Effect("IOBuffer", "words"))

    def test_effects_propagate_through_the_call_graph(self):
        table = _table("""
            class Bank:
                def _raw_close(self):
                    self.open_row = -1
                def close(self):
                    self._raw_close()
                def drain(self):
                    self.close()
        """)
        assert Effect("Bank", "open_row") in table["drain"].writes

    def test_augassign_counts_as_read(self):
        table = _table("""
            class Bank:
                def hit(self):
                    self.row_hits += 1
        """)
        assert Effect("Bank", "row_hits") in table["hit"].reads

    def test_nested_defs_do_not_leak_into_the_enclosing_function(self):
        table = _table("""
            class Bank:
                def outer(self):
                    def inner():
                        self.open_row = 3
                    return inner
        """)
        assert Effect("Bank", "open_row") not in table["outer"].writes


class TestConflictPairing:
    def test_seeded_same_tick_write_write_is_flagged(self, tmp_path):
        findings = _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def load_row(self):
                    self.open_row = 7
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row)
                    sim.schedule_at(when_ps, self.load_row)
        """)
        assert len(findings) == 1
        assert "open_row" in findings[0].message
        assert "no ordering edge" in findings[0].message

    def test_priority_edge_silences_the_pair(self, tmp_path):
        assert _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def load_row(self):
                    self.open_row = 7
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row, priority=0)
                    sim.schedule_at(when_ps, self.load_row, priority=1)
        """) == []

    def test_write_read_overlap_is_flagged(self, tmp_path):
        findings = _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def audit(self):
                    return self.open_row
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row)
                    sim.schedule_at(when_ps, self.audit)
        """)
        assert len(findings) == 1

    def test_disjoint_attributes_are_silent(self, tmp_path):
        assert _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def count_hit(self):
                    self.row_hits = 1
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row)
                    sim.schedule_at(when_ps, self.count_hit)
        """) == []

    def test_read_read_overlap_is_silent(self, tmp_path):
        assert _scan(tmp_path, """
            class RowBufferModel:
                def audit(self):
                    return self.open_row
                def peek(self):
                    return self.open_row + 1
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.audit)
                    sim.schedule_at(when_ps, self.peek)
        """) == []

    def test_same_handler_twice_is_not_paired(self, tmp_path):
        assert _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row)
                    sim.schedule_at(when_ps + 5, self.close_row)
        """) == []

    def test_non_constant_priority_is_no_edge(self, tmp_path):
        findings = _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def load_row(self):
                    self.open_row = 7
                def arm(self, sim, when_ps, p):
                    sim.schedule_at(when_ps, self.close_row, priority=p)
                    sim.schedule_at(when_ps, self.load_row, priority=1)
        """)
        assert len(findings) == 1
        assert "non-constant priority" in findings[0].message

    def test_lambda_handlers_are_resolved(self, tmp_path):
        findings = _scan(tmp_path, """
            class RowBufferModel:
                def load_row(self):
                    self.open_row = 7
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, lambda: setattr_row(self))
                    sim.schedule_at(when_ps, self.load_row)

            def setattr_row(model: RowBufferModel):
                model.open_row = -1
        """)
        assert len(findings) == 1

    def test_transitive_conflict_through_helper_is_flagged(self, tmp_path):
        findings = _scan(tmp_path, """
            class RowBufferModel:
                def _raw_close(self):
                    self.open_row = -1
                def close_row(self):
                    self._raw_close()
                def load_row(self):
                    self.open_row = 7
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row)
                    sim.schedule_at(when_ps, self.load_row)
        """)
        assert len(findings) == 1

    def test_suppression_comment_applies(self, tmp_path):
        assert _scan(tmp_path, """
            class RowBufferModel:
                def close_row(self):
                    self.open_row = -1
                def load_row(self):
                    self.open_row = 7
                def arm(self, sim, when_ps):
                    sim.schedule_at(when_ps, self.close_row)
                    sim.schedule_at(when_ps, self.load_row)  # analyze: allow[race-static] audited
        """) == []


class TestFixtures:
    def test_bad_fixture_trips_only_race_static(self, fixture_tree):
        report = run_analysis(
            [str(fixture_tree / "sim" / "bad_race_same_tick.py")],
            with_project_passes=False)
        assert [f.rule for f in report.findings] == ["race-static"]

    def test_good_fixture_is_clean(self, fixture_tree):
        report = run_analysis(
            [str(fixture_tree / "sim" / "good_race_priorities.py")],
            with_project_passes=False)
        assert report.findings == []
